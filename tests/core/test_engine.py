"""Unit tests for the multi-round CrowdFusionEngine."""

import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.selection import get_selector
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.worker import WorkerPool
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import BudgetError


def oracle_provider(gold):
    """An answer provider that always answers with the gold label."""

    def collect(task_ids):
        return AnswerSet.from_mapping({fact_id: gold[fact_id] for fact_id in task_ids})

    return collect


GOLD = {"f1": True, "f2": True, "f3": True, "f4": False}


class TestEngineConfiguration:
    def test_invalid_budget_rejected(self):
        with pytest.raises(BudgetError):
            CrowdFusionEngine(get_selector("greedy"), CrowdModel(0.8), budget=0, tasks_per_round=1)

    def test_invalid_round_size_rejected(self):
        with pytest.raises(BudgetError):
            CrowdFusionEngine(get_selector("greedy"), CrowdModel(0.8), budget=5, tasks_per_round=0)

    def test_properties(self):
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=6, tasks_per_round=2
        )
        assert engine.budget == 6
        assert engine.tasks_per_round == 2


class TestEngineRun:
    def test_budget_respected(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=5, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        assert result.total_cost <= 5

    def test_round_sizes(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=5, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        sizes = [len(record.task_ids) for record in result.rounds]
        assert all(size <= 2 for size in sizes)
        # The last round may be smaller because of the odd budget.
        assert sum(sizes) == result.total_cost

    def test_utility_improves_with_oracle_answers(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.9), budget=12, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        assert result.final_utility > result.initial_utility

    def test_final_labels_match_gold_with_reliable_oracle(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.95), budget=20, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        assert result.predicted_labels() == GOLD

    def test_history_records_cumulative_cost(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=6, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        costs = [record.cumulative_cost for record in result.rounds]
        assert costs == sorted(costs)
        assert costs[-1] == result.total_cost

    def test_utility_curve_starts_at_prior(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=4, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        curve = result.utility_curve()
        assert curve[0] == (0, result.initial_utility)
        assert len(curve) == len(result.rounds) + 1

    def test_round_callback_invoked_every_round(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=4, tasks_per_round=2
        )
        seen = []
        engine.run(dist, oracle_provider(GOLD), round_callback=lambda r, d: seen.append(r))
        assert len(seen) == 2

    def test_no_reselect_mode_stops_after_all_facts_asked(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"),
            CrowdModel(0.8),
            budget=100,
            tasks_per_round=2,
            reselect_asked_facts=False,
        )
        result = engine.run(dist, oracle_provider(GOLD))
        asked = [fact for record in result.rounds for fact in record.task_ids]
        assert len(asked) == len(set(asked)) == 4

    def test_works_with_simulated_platform(self):
        dist = running_example_distribution()
        platform = SimulatedPlatform(
            ground_truth=GOLD, workers=WorkerPool.homogeneous(10, 0.9, seed=1)
        )
        engine = CrowdFusionEngine(
            get_selector("greedy_prune_pre"), CrowdModel(0.9), budget=12, tasks_per_round=3
        )
        result = engine.run(dist, platform)
        assert result.total_cost == 12
        assert platform.stats().answers_collected == 12

    def test_round_record_gain_property(self):
        dist = running_example_distribution()
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=2, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider(GOLD))
        record = result.rounds[0]
        assert record.utility_gain == pytest.approx(
            record.utility_after - record.utility_before
        )

    def test_stops_when_distribution_is_certain(self):
        dist = JointDistribution.independent({"a": 1.0, "b": 1.0})
        engine = CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=10, tasks_per_round=2
        )
        result = engine.run(dist, oracle_provider({"a": True, "b": True}))
        # Nothing is uncertain, so the greedy selector returns no tasks and the
        # engine terminates without spending the budget.
        assert result.total_cost == 0
        assert result.rounds == []
