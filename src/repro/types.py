"""Shared typing aliases used across the CrowdFusion reproduction library."""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

#: A truth assignment over ``n`` facts, ordered by fact index.
TruthVector = Tuple[bool, ...]

#: Mapping from a fact identifier to a marginal probability of being true.
MarginalMap = Mapping[str, float]

#: A sequence of fact identifiers (e.g. a selected task set).
FactIds = Sequence[str]
