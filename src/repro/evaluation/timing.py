"""Selection-time measurement (Table V of the paper).

Table V reports the average wall-clock time of *one selection round* for five
algorithms (OPT, Approx., Approx.&Prune, Approx.&Pre., Approx.&Prune&Pre.)
at ``k`` = 1…10, measured over the books with more than 20 facts.  The
helpers here run the same measurement on any list of joint distributions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import get_selector
from repro.exceptions import CrowdFusionError


@dataclass(frozen=True)
class TimingRow:
    """One (selector, k) cell of the timing table."""

    selector: str
    k: int
    mean_seconds: float
    runs: int


def measure_selection_times(
    distributions: Sequence[JointDistribution],
    selectors: Sequence[str],
    ks: Sequence[int],
    accuracy: float = 0.8,
    repeats: int = 1,
    skip: Optional[Dict[str, int]] = None,
) -> List[TimingRow]:
    """Measure the average one-round selection time per selector per ``k``.

    Parameters
    ----------
    distributions:
        The per-entity joint distributions selections run against (the paper
        averages over books with more than 20 facts).
    selectors:
        Selector names or paper labels to time.
    ks:
        Round sizes to sweep.
    accuracy:
        Crowd accuracy assumed during selection.
    repeats:
        How many times each (selector, k, distribution) measurement is taken.
    skip:
        Optional per-selector maximum ``k``: larger ``k`` values are skipped
        (the paper could not finish OPT beyond ``k`` = 3).
    """
    if not distributions:
        raise CrowdFusionError("timing needs at least one distribution")
    if repeats <= 0:
        raise CrowdFusionError(f"repeats must be positive, got {repeats}")
    crowd = CrowdModel(accuracy)
    caps = dict(skip or {})
    rows: List[TimingRow] = []

    for name in selectors:
        for k in ks:
            cap = caps.get(name)
            if cap is not None and k > cap:
                continue
            total = 0.0
            runs = 0
            for distribution in distributions:
                for _ in range(repeats):
                    selector = get_selector(name)
                    started = time.perf_counter()
                    selector.select(distribution, crowd, k)
                    total += time.perf_counter() - started
                    runs += 1
            rows.append(
                TimingRow(selector=name, k=k, mean_seconds=total / runs, runs=runs)
            )
    return rows


def rows_as_table(rows: Sequence[TimingRow]) -> Dict[int, Dict[str, float]]:
    """Pivot timing rows into ``{k: {selector: mean seconds}}`` (Table V layout)."""
    table: Dict[int, Dict[str, float]] = {}
    for row in rows:
        table.setdefault(row.k, {})[row.selector] = row.mean_seconds
    return table
