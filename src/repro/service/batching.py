"""The shared evaluator-pool group: N worker pools for M tenants, N « M.

PR 5's runtime gave every session its *own* persistent fork pool — fine for
a batch experiment over a fixed entity list, fatal for a service whose
session count is unbounded (``workers × sessions`` resident processes).  The
:class:`EngineGroup` inverts the ownership: the *service* owns a small,
fixed set of :class:`~repro.core.selection.parallel.EvaluatorPool` instances
and assigns each new session to one of them round-robin.  Each pool
multiplexes all of its tenants' candidate scans over one set of forked
workers — the snapshot-ring dispatch header carries the engine id, so a
worker serves whichever tenant's scan arrives next — and the resident
process count is ``pools × workers`` regardless of how many sessions are
live.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.selection.parallel import EvaluatorPool, ParallelPolicy


class EngineGroup:
    """A fixed round-robin set of shared evaluator pools.

    Built with ``policy=None`` the group is a no-op (every tenant scans
    serially) — the right shape for single-core hosts and for tests — so the
    server never needs a separate code path for the serial case.
    """

    def __init__(self, policy: Optional[ParallelPolicy], pools: int = 1):
        if pools < 1:
            raise ValueError(f"an engine group needs at least one pool slot, got {pools}")
        self._policy = policy
        self._pools: List[EvaluatorPool] = (
            [EvaluatorPool(policy) for _ in range(pools)] if policy is not None else []
        )
        self._assigned = 0

    @property
    def policy(self) -> Optional[ParallelPolicy]:
        return self._policy

    @property
    def parallel(self) -> bool:
        """Whether tenants of this group scan on shared worker pools at all."""
        return bool(self._pools)

    def acquire(self) -> Optional[EvaluatorPool]:
        """The pool the next session should attach to (``None`` = serial).

        Round-robin over the fixed pool set: tenants spread evenly, and the
        assignment is deterministic in creation order.
        """
        if not self._pools:
            return None
        pool = self._pools[self._assigned % len(self._pools)]
        self._assigned += 1
        return pool

    def utilisation(self) -> Dict[str, Any]:
        """Pool residency and traffic counters for the metrics endpoint."""
        return {
            "pools": len(self._pools),
            "workers_per_pool": (
                self._policy.resolved_workers() if self._policy is not None else 0
            ),
            "sessions_assigned": self._assigned,
            "per_pool": [
                {
                    "attached": pool.attached,
                    "forked": pool.forked,
                    "dispatches": pool.dispatches,
                    "reforks": pool.reforks,
                    "worker_crashes": pool.worker_crashes,
                    "pool_rebuilds": pool.pool_rebuilds,
                    "breaker_trips": pool.breaker_trips,
                    "degraded": pool.degraded,
                }
                for pool in self._pools
            ],
        }

    def recovery_counters(self) -> Dict[str, int]:
        """Crash/recovery totals across every pool, for the service metrics."""
        return {
            "worker_crashes": sum(pool.worker_crashes for pool in self._pools),
            "pool_rebuilds": sum(pool.pool_rebuilds for pool in self._pools),
            "breaker_trips": sum(pool.breaker_trips for pool in self._pools),
        }

    def close(self) -> None:
        """Terminate every pool's workers and shared-memory rings (idempotent)."""
        for pool in self._pools:
            pool.close()

    def __enter__(self) -> "EngineGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
