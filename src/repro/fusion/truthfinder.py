"""TruthFinder (Yin, Han & Yu, TKDE 2008) — iterative trust propagation.

TruthFinder alternates between estimating source trustworthiness (the mean
confidence of the claims a source asserts) and claim confidence (one minus
the probability that *every* supporting source is wrong), with a dampening
factor to avoid overconfidence.  It was one of the first web truth-discovery
algorithms and serves as an alternative CrowdFusion initialiser and as a
comparison point in the fusion benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionResult
from repro.exceptions import FusionError


class TruthFinder:
    """Classic TruthFinder with dampening and implication-free claim scoring.

    Parameters
    ----------
    initial_trust:
        Starting trustworthiness of every source.
    dampening:
        The ``γ`` factor scaling trust scores before they are combined; keeps
        the fixed point away from 1.0.
    max_iterations, tolerance:
        Convergence controls on the change of source trust between iterations.
    """

    name = "truthfinder"

    def __init__(
        self,
        initial_trust: float = 0.8,
        dampening: float = 0.3,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
    ):
        if not 0.0 < initial_trust < 1.0:
            raise FusionError(f"initial_trust must be in (0, 1), got {initial_trust}")
        if not 0.0 < dampening <= 1.0:
            raise FusionError(f"dampening must be in (0, 1], got {dampening}")
        if max_iterations <= 0:
            raise FusionError(f"max_iterations must be positive, got {max_iterations}")
        self._initial_trust = initial_trust
        self._dampening = dampening
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def run(self, database: ClaimDatabase) -> FusionResult:
        """Iterate trust/confidence propagation to a fixed point."""
        claims = database.claims()
        if not claims:
            raise FusionError("cannot fuse an empty claim database")
        sources = [source.source_id for source in database.sources()]

        trust: Dict[str, float] = {source_id: self._initial_trust for source_id in sources}
        confidences: Dict[str, float] = {}
        iterations_run = 0

        for iteration in range(1, self._max_iterations + 1):
            iterations_run = iteration
            confidences = self._claim_confidences(database, trust)
            new_trust = self._source_trust(database, confidences)
            drift = sum(abs(new_trust[source_id] - trust[source_id]) for source_id in sources)
            trust = new_trust
            if drift < self._tolerance:
                break

        return FusionResult(
            method=self.name,
            confidences=confidences,
            source_weights=dict(trust),
            iterations=iterations_run,
        )

    def _claim_confidences(
        self, database: ClaimDatabase, trust: Dict[str, float]
    ) -> Dict[str, float]:
        """TruthFinder claim scoring.

        Each source contributes its trust score ``τ(s) = −ln(1 − t(s))``; the
        claim's raw score is the sum over its supporters and the final
        confidence applies the dampened sigmoid ``1 / (1 + e^(−γ·σ*))`` — the
        adjustment Yin et al. introduce to keep the iteration from collapsing
        or saturating.
        """
        confidences: Dict[str, float] = {}
        for claim in database.claims():
            raw_score = 0.0
            for source_id in claim.sources:
                trust_value = min(0.999999, trust.get(source_id, self._initial_trust))
                raw_score += -math.log(1.0 - trust_value)
            confidences[claim.claim_id] = 1.0 / (1.0 + math.exp(-self._dampening * raw_score))
        return confidences

    def _source_trust(
        self, database: ClaimDatabase, confidences: Dict[str, float]
    ) -> Dict[str, float]:
        """Trustworthiness = mean confidence of the source's claims."""
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for claim in database.claims():
            for source_id in claim.sources:
                totals[source_id] = totals.get(source_id, 0.0) + confidences[claim.claim_id]
                counts[source_id] = counts.get(source_id, 0) + 1
        trust = {}
        for source in database.sources():
            count = counts.get(source.source_id, 0)
            if count == 0:
                trust[source.source_id] = self._initial_trust
            else:
                # Clamp away from 0 and 1: a source that only asserts
                # unsupported claims would otherwise spiral to exactly zero
                # trust, which both breaks the log-space transform and claims
                # an unwarranted certainty about the source being useless.
                trust[source.source_id] = min(
                    0.999, max(0.01, totals[source.source_id] / count)
                )
        return trust
