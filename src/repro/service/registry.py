"""Session bookkeeping: addressable ids, budgets and per-tenant runtime state.

The registry is the service's source of truth for "which sessions exist".
Sessions live in a :class:`~repro.core.selection.session.SessionPool` (the
same substrate the batch experiment runner uses), and every session carries
a :class:`SessionRecord` with the service-level state the core runtime
doesn't know about: the remaining task budget, the per-tenant selector
instance, and the generation-keyed response caches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.core.selection import available_selectors, get_selector
from repro.core.selection.base import TaskSelector
from repro.core.selection.session import RefinementSession, SessionPool
from repro.exceptions import BudgetError, CrowdFusionError, SelectionError
from repro.service.api import (
    BudgetExhaustedError,
    UnknownSessionError,
    ValidationFailedError,
)
from repro.service.batching import EngineGroup

#: Generation key of a cached response: ``(reweights, channel_swaps)`` of the
#: session's engine.  Both counters only ever grow, and between them they
#: cover every event that changes selection scores — a Bayesian merge bumps
#: ``reweights``, a re-calibration channel swap bumps ``channel_swaps`` — so
#: a cache entry is valid iff its key matches the engine's current pair.
Generation = Tuple[int, int]


@dataclass
class SessionRecord:
    """One tenant's session plus the service-level state around it."""

    session_id: str
    session: RefinementSession
    selector: TaskSelector
    selector_name: str
    budget: int
    spent: int = 0
    #: ``(generation, batch) → SelectionReply`` — selection is deterministic
    #: given the posterior and channel, so replies are reusable until either
    #: changes.
    selection_cache: Dict[Tuple[Generation, int], Any] = field(default_factory=dict)
    #: ``generation → PosteriorView``.
    posterior_cache: Dict[Generation, Any] = field(default_factory=dict)

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    def generation(self) -> Generation:
        """The engine's current ``(reweights, channel_swaps)`` pair."""
        engine = self.session.engine
        return (engine.reweights, engine.channel_swaps)

    def invalidate_caches(self) -> None:
        """Drop every cached reply (called after merges and channel swaps).

        Strictly, stale generations could never be served again — the key
        pair only grows — but dropping them keeps the per-session cache at
        one generation's worth of entries instead of the whole history.
        """
        self.selection_cache.clear()
        self.posterior_cache.clear()

    def charge(self, tasks: int) -> None:
        """Debit ``tasks`` from the budget, or refuse the whole batch."""
        if tasks > self.remaining:
            raise BudgetExhaustedError(
                f"session {self.session_id} has {self.remaining} of "
                f"{self.budget} budget left; cannot accept {tasks} answers"
            )
        self.spent += tasks


class SessionRegistry:
    """Creates, resolves and evicts the service's sessions."""

    def __init__(self, group: EngineGroup, kernel: str = "auto"):
        self._group = group
        # Every tenant's engine is built on the same kernel tier — the tier is
        # a service-deployment property (is numba installed in this image?),
        # not a per-session choice.
        self._kernel = kernel
        self._pool = SessionPool()
        self._records: Dict[str, SessionRecord] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._records)

    def create(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        budget: int,
        selector: str = "greedy_prune_pre",
    ) -> SessionRecord:
        """Register a new session attached to one of the shared pools."""
        if budget <= 0:
            raise ValidationFailedError(f"budget must be positive, got {budget}")
        if selector not in available_selectors():
            raise ValidationFailedError(
                f"unknown selector {selector!r}; expected one of "
                f"{available_selectors()}"
            )
        session_id = f"s-{next(self._ids):06d}"
        try:
            session = self._pool.add(
                session_id,
                distribution,
                channel,
                runtime=RuntimeOptions(kernel=self._kernel),
                evaluator_pool=self._group.acquire(),
            )
        except (BudgetError, SelectionError, CrowdFusionError) as error:
            raise ValidationFailedError(f"cannot create session: {error}") from None
        record = SessionRecord(
            session_id=session_id,
            session=session,
            selector=get_selector(selector),
            selector_name=selector,
            budget=budget,
        )
        self._records[session_id] = record
        return record

    def get(self, session_id: str) -> SessionRecord:
        try:
            return self._records[session_id]
        except KeyError:
            raise UnknownSessionError(f"no session {session_id!r}") from None

    def remove(self, session_id: str) -> SessionRecord:
        """Evict one session, releasing its shared-pool slot immediately."""
        record = self.get(session_id)
        del self._records[session_id]
        # SessionPool.remove closes the session, detaching its engine from
        # the shared evaluator pool — the worker-leak fix this service needs.
        self._pool.remove(session_id)
        return record

    def session_ids(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def close(self) -> None:
        """Evict every session and shut the shared pools down (idempotent)."""
        self._records.clear()
        self._pool.close()
        self._group.close()
