"""Asyncio client for the refinement service's JSON-lines transport.

The client mirrors the server API one to one and re-raises wire errors as
their typed :class:`~repro.service.api.ServiceError` subclasses, so calling
code handles a remote service exactly like an in-process
:class:`~repro.service.server.RefinementService`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Union

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.service.api import (
    MAX_LINE_BYTES,
    MergeReport,
    PosteriorView,
    SelectionReply,
    ServiceError,
    SessionClosed,
    SessionCreated,
    encode_answers,
    encode_channel,
    encode_distribution,
    raise_from_payload,
)


class ServiceClient:
    """One JSON-lines connection to a refinement service.

    Requests on one client are serialised by an internal lock (the wire
    protocol is strictly request/response per connection); open several
    clients for concurrent tenants.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        # Server responses (posteriors especially) are bounded by
        # MAX_LINE_BYTES, far past asyncio's default 64 KiB readline limit.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass

    async def _call(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        async with self._lock:
            self._writer.write((json.dumps(dict(request)) + "\n").encode("utf-8"))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError("the service closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise_from_payload(response.get("error", {}))
        return response.get("result", {})

    # -- the session API ---------------------------------------------------------------

    async def create_session(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        budget: int,
        selector: str = "greedy_prune_pre",
    ) -> SessionCreated:
        return SessionCreated.from_payload(
            await self._call(
                {
                    "op": "create_session",
                    "distribution": encode_distribution(distribution),
                    "channel": encode_channel(channel),
                    "budget": budget,
                    "selector": selector,
                }
            )
        )

    async def post_answers(
        self, session_id: str, answers: Union[AnswerSet, Mapping[str, bool]]
    ) -> MergeReport:
        payload = (
            encode_answers(answers)
            if isinstance(answers, AnswerSet)
            else {str(fact_id): bool(value) for fact_id, value in answers.items()}
        )
        return MergeReport.from_payload(
            await self._call(
                {"op": "post_answers", "session_id": session_id, "answers": payload}
            )
        )

    async def select_next(self, session_id: str, batch: int = 1) -> SelectionReply:
        return SelectionReply.from_payload(
            await self._call(
                {"op": "select_next", "session_id": session_id, "batch": batch}
            )
        )

    async def get_posterior(self, session_id: str) -> PosteriorView:
        return PosteriorView.from_payload(
            await self._call({"op": "get_posterior", "session_id": session_id})
        )

    async def close_session(self, session_id: str) -> SessionClosed:
        return SessionClosed.from_payload(
            await self._call({"op": "close_session", "session_id": session_id})
        )

    async def metrics(self) -> Dict[str, Any]:
        return await self._call({"op": "metrics"})

    async def ping(self) -> Dict[str, Any]:
        return await self._call({"op": "ping"})
