"""Operational metrics of the refinement service.

Plain in-process counters plus bounded latency reservoirs — enough to answer
the operational questions a multi-tenant deployment actually asks (how many
sessions are live, how fast are merges draining, what does tail selection
latency look like, are the shared pools earning their residency) without any
external dependency.  :meth:`ServiceMetrics.snapshot` is the payload of the
service's metrics endpoint.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Optional


class LatencyStats:
    """Percentiles over a sliding window of operation latencies.

    A bounded deque of the most recent samples: old traffic ages out, so the
    percentiles describe the service as it behaves *now*, and memory stays
    constant no matter how long the server runs.
    """

    def __init__(self, window: int = 1024):
        self._samples: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Total samples ever recorded (not just the current window)."""
        return self._count

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction``-quantile (nearest-rank) of the current window."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, Any]:
        """Count, mean and p50/p95/max of the window, in milliseconds."""
        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self._count,
            "mean_ms": _ms(self._total / self._count) if self._count else None,
            "p50_ms": _ms(self.percentile(0.50)),
            "p95_ms": _ms(self.percentile(0.95)),
            "max_ms": _ms(max(self._samples)) if self._samples else None,
        }


class ServiceMetrics:
    """Everything the service counts, in one place."""

    def __init__(self, latency_window: int = 1024):
        self._started = time.monotonic()
        self.sessions_created = 0
        self.sessions_closed = 0
        self.merges = 0
        self.answers_merged = 0
        self.merge_batches = 0
        self.selections = 0
        self.selection_cache_hits = 0
        self.posterior_cache_hits = 0
        self.rejected_overload = 0
        self.errors = 0
        self.deadline_hits = 0
        self.client_retries = 0
        self.merge_latency = LatencyStats(latency_window)
        self.selection_latency = LatencyStats(latency_window)

    @property
    def sessions_live(self) -> int:
        return self.sessions_created - self.sessions_closed

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def merges_per_second(self) -> float:
        uptime = self.uptime_seconds()
        return self.merges / uptime if uptime > 0 else 0.0

    def snapshot(
        self,
        pools: Optional[Dict[str, Any]] = None,
        recovery: Optional[Dict[str, int]] = None,
        durability: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The metrics-endpoint payload (pool utilisation and crash/recovery
        counters spliced in by the server, which owns the evaluator-pool
        group)."""
        payload: Dict[str, Any] = {
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "sessions": {
                "live": self.sessions_live,
                "created": self.sessions_created,
                "closed": self.sessions_closed,
            },
            "merges": {
                "count": self.merges,
                "answers": self.answers_merged,
                "batches": self.merge_batches,
                "per_second": round(self.merges_per_second(), 3),
                "latency": self.merge_latency.snapshot(),
            },
            "selections": {
                "count": self.selections,
                "cache_hits": self.selection_cache_hits,
                "latency": self.selection_latency.snapshot(),
            },
            "posterior_cache_hits": self.posterior_cache_hits,
            "rejected_overload": self.rejected_overload,
            "errors": self.errors,
            "recovery": {
                "worker_crashes": 0,
                "pool_rebuilds": 0,
                "breaker_trips": 0,
                **(recovery or {}),
                "deadline_hits": self.deadline_hits,
                "client_retries": self.client_retries,
            },
        }
        if pools is not None:
            payload["pools"] = pools
        if durability is not None:
            # Snapshot/eviction/revival counters, spliced in by the server
            # when the registry runs with a durable snapshot store.
            payload["durability"] = durability
        return payload
