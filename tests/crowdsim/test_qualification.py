"""Unit tests for the qualification pre-test (crowd accuracy estimation)."""

import pytest

from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.qualification import (
    QualificationTest,
    estimate_accuracy,
    wilson_interval,
)
from repro.crowdsim.worker import WorkerPool
from repro.exceptions import PlatformError

GOLD = {f"g{i}": (i % 2 == 0) for i in range(20)}


def make_platform(accuracy, seed=0):
    return SimulatedPlatform(
        ground_truth=GOLD, workers=WorkerPool.homogeneous(10, accuracy, seed=seed)
    )


class TestWilsonInterval:
    def test_interval_contains_proportion(self):
        low, high = wilson_interval(80, 100)
        assert low < 0.8 < high

    def test_interval_narrows_with_more_trials(self):
        low_small, high_small = wilson_interval(8, 10)
        low_large, high_large = wilson_interval(800, 1000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_zero_trials_rejected(self):
        with pytest.raises(PlatformError):
            wilson_interval(0, 0)

    def test_invalid_successes_rejected(self):
        with pytest.raises(PlatformError):
            wilson_interval(5, 3)


class TestEstimateAccuracy:
    def test_exact_agreement(self):
        answers = {"a": True, "b": False}
        gold = {"a": True, "b": False}
        assert estimate_accuracy(answers, gold) == pytest.approx(1.0)

    def test_clipped_at_half(self):
        answers = {"a": True, "b": True}
        gold = {"a": False, "b": False}
        assert estimate_accuracy(answers, gold) == pytest.approx(0.5)

    def test_empty_answers_rejected(self):
        with pytest.raises(PlatformError):
            estimate_accuracy({}, {"a": True})

    def test_unlabelled_facts_rejected(self):
        with pytest.raises(PlatformError):
            estimate_accuracy({"a": True}, {})


class TestQualificationTest:
    def test_requires_gold_facts(self):
        with pytest.raises(PlatformError):
            QualificationTest({})

    def test_requires_positive_repetitions(self):
        with pytest.raises(PlatformError):
            QualificationTest(GOLD, repetitions=0)

    def test_sample_size(self):
        test = QualificationTest(GOLD, repetitions=3)
        assert test.sample_size == 60

    def test_estimates_close_to_true_accuracy(self):
        test = QualificationTest(GOLD, repetitions=10)
        result = test.run(make_platform(accuracy=0.85, seed=2))
        assert result.estimated_accuracy == pytest.approx(0.85, abs=0.06)
        assert result.sample_size == 200

    def test_interval_brackets_estimate(self):
        test = QualificationTest(GOLD, repetitions=5)
        result = test.run(make_platform(accuracy=0.8, seed=4))
        assert result.interval_low <= result.raw_accuracy <= result.interval_high

    def test_perfect_crowd_estimated_as_one(self):
        result = QualificationTest(GOLD).run(make_platform(accuracy=1.0))
        assert result.estimated_accuracy == pytest.approx(1.0)
        assert result.raw_accuracy == pytest.approx(1.0)

    def test_estimate_clipped_to_model_range(self):
        result = QualificationTest(GOLD, repetitions=2).run(make_platform(accuracy=0.5, seed=6))
        assert 0.5 <= result.estimated_accuracy <= 1.0
