"""Plain-text table and series formatting for benchmark output.

The benchmark harnesses print the same rows and series the paper reports;
these helpers keep that output aligned and readable without any plotting
dependency.  :class:`CurveStream` renders quality-vs-cost curve points
incrementally — one line per point as it becomes available — so long sweeps
(and the durable orchestrator's resume path) report progress without
materialising the whole curve first.
"""

from __future__ import annotations

from typing import IO, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import CrowdFusionError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    if not headers:
        raise CrowdFusionError("a table needs at least one column")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise CrowdFusionError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [render(list(headers)), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


class CurveStream:
    """Incremental quality-curve reporter.

    Feed it curve points one at a time (any object with ``cost``, ``utility``,
    ``f1``, ``precision``, ``recall`` and ``accuracy`` attributes, i.e. a
    :class:`~repro.evaluation.experiment.QualityPoint`); it prints a header
    on the first point and one aligned row per point after that, flushing the
    sink each time so the output survives an abrupt kill.  ``emit`` returns
    the rendered line for callers that journal it elsewhere too.
    """

    HEADERS = ("point", "cost", "utility", "f1", "precision", "recall", "accuracy")
    _WIDTHS = (5, 8, 12, 8, 9, 8, 8)

    def __init__(self, sink: Optional[IO[str]] = None, precision: int = 4) -> None:
        self._sink = sink
        self._precision = precision
        self._count = 0

    @property
    def count(self) -> int:
        """Number of points emitted so far."""
        return self._count

    def _write(self, line: str) -> None:
        if self._sink is not None:
            self._sink.write(line + "\n")
            self._sink.flush()

    def emit(self, point: object) -> str:
        """Render (and stream, when a sink is set) one curve point."""
        if self._count == 0:
            self._write(
                "  ".join(
                    header.rjust(width)
                    for header, width in zip(self.HEADERS, self._WIDTHS)
                )
            )
        cells = (
            str(self._count),
            str(point.cost),
            f"{point.utility:.{self._precision}f}",
            f"{point.f1:.{self._precision}f}",
            f"{point.precision:.{self._precision}f}",
            f"{point.recall:.{self._precision}f}",
            f"{point.accuracy:.{self._precision}f}",
        )
        line = "  ".join(cell.rjust(width) for cell, width in zip(cells, self._WIDTHS))
        self._write(line)
        self._count += 1
        return line


def format_series(
    name: str, points: Sequence[Tuple[float, float]], precision: int = 4
) -> str:
    """Render one named (x, y) series as a compact single line per point."""
    if not points:
        raise CrowdFusionError(f"series {name!r} has no points")
    body = ", ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in points
    )
    return f"{name}: {body}"
