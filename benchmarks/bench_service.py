"""Refinement-service benchmarks: multi-tenant throughput and latency.

Three scenarios for the ``service/*`` family of the shared selection
artifact, all driving the in-process :class:`RefinementService` (no sockets,
so the numbers isolate the service layer itself — queueing, batching,
caching — from TCP noise):

* **multi-tenant throughput** — N concurrent tenants each running a full
  select → post round loop; wall-clock, requests/sec, and the service's own
  selection-latency percentiles, with the per-tenant trajectories asserted
  identical to standalone serial sessions (the service must add overhead,
  never divergence);
* **merge batching** — one chatty tenant enqueueing whole waves of answer
  posts at once; the drainer must fold each wave into fewer executor hops
  than merges (``merge_batches < merges``);
* **shared-pool throughput** (``parallel`` marker) — the acceptance-style
  four-tenants-one-pool run, timed, with pool utilisation recorded.

Scenarios merge-append into ``benchmarks/results/BENCH_selection.json``
under ``service/*`` keys; schema in ``benchmarks/README.md``.
"""

import asyncio
import multiprocessing
import time

import numpy as np
import pytest

import _bench_utils  # noqa: F401  (sys.path setup for src/)

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.core.selection import RefinementSession, get_selector
from repro.service import RefinementService

from bench_selection_hotpath import _record_scenarios

SELECTOR = "greedy_prune_pre"


def service_distribution(num_facts, support, seed):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    return JointDistribution(
        tuple(f"f{i}" for i in range(num_facts)),
        dict(zip((int(mask) for mask in masks), probabilities)),
    )


def scripted_answers(task_ids, round_index):
    return AnswerSet.from_mapping(
        {fact_id: (round_index + position) % 2 == 0
         for position, fact_id in enumerate(task_ids)}
    )


async def drive_tenant(service, session_id, tenant, rounds, k):
    trajectory = []
    for round_index in range(rounds):
        reply = await service.select_next(session_id, batch=k)
        await service.post_answers(
            session_id, scripted_answers(reply.task_ids, round_index + tenant)
        )
        trajectory.append(tuple(reply.task_ids))
    return trajectory


def standalone_trajectory(distribution, channel, tenant, rounds, k):
    session = RefinementSession(distribution, channel)
    selector = get_selector(SELECTOR)
    trajectory = []
    for round_index in range(rounds):
        result = session.select(selector, k)
        session.merge(scripted_answers(result.task_ids, round_index + tenant))
        trajectory.append(tuple(result.task_ids))
    return trajectory


def run_tenant_fleet(runtime, pools, tenants, rounds, k, num_facts, support):
    """One timed fleet run; returns (trajectories, wall_seconds, metrics)."""
    problems = [
        (service_distribution(num_facts, support, seed=50 + t), CrowdModel(0.8))
        for t in range(tenants)
    ]

    async def scenario():
        async with RefinementService(runtime, pools=pools) as service:
            sessions = []
            for prior, channel in problems:
                created = await service.create_session(
                    prior, channel, budget=rounds * k, selector=SELECTOR
                )
                sessions.append(created.session_id)
            started = time.perf_counter()
            trajectories = await asyncio.gather(
                *(
                    drive_tenant(service, session_id, tenant, rounds, k)
                    for tenant, session_id in enumerate(sessions)
                )
            )
            elapsed = time.perf_counter() - started
            return trajectories, elapsed, service.metrics()

    trajectories, elapsed, metrics = asyncio.run(scenario())
    for tenant, (prior, channel) in enumerate(problems):
        expected = standalone_trajectory(prior, channel, tenant, rounds, k)
        assert trajectories[tenant] == expected, (
            f"tenant {tenant} diverged from its standalone session"
        )
    return trajectories, elapsed, metrics, problems


def test_multi_tenant_throughput_serial_runtime():
    tenants, rounds, k = 4, 4, 2
    _, elapsed, metrics, problems = run_tenant_fleet(
        runtime=None, pools=1, tenants=tenants, rounds=rounds, k=k,
        num_facts=10, support=256,
    )

    # The non-service baseline: the same work as plain session loops.
    started = time.perf_counter()
    for tenant, (prior, channel) in enumerate(problems):
        standalone_trajectory(prior, channel, tenant, rounds, k)
    baseline = time.perf_counter() - started

    requests = tenants * rounds * 2  # one select + one post per round
    entry = {
        "suite": "service",
        "description": (
            f"{tenants} concurrent tenants x {rounds} select/post rounds "
            f"(k={k}) through the in-process async service (serial runtime), "
            "trajectories asserted identical to standalone sessions; "
            "baseline is the same work as plain session loops."
        ),
        "tenants": tenants,
        "rounds": rounds,
        "k": k,
        "num_facts": 10,
        "support": 256,
        "requests": requests,
        "wall_seconds": elapsed,
        "requests_per_second": requests / elapsed,
        "baseline_wall_seconds": baseline,
        "service_overhead_factor": elapsed / baseline if baseline > 0 else None,
        "merges_per_second": metrics["merges"]["per_second"],
        "selection_latency_ms": metrics["selections"]["latency"],
        "merge_latency_ms": metrics["merges"]["latency"],
        "identical_task_sequences": True,
    }
    _record_scenarios({f"service/tenants{tenants}_rounds{rounds}_serial": entry})


def test_merge_batching_folds_chatty_tenant_waves():
    waves, wave_size = 4, 6
    prior = service_distribution(10, 256, seed=60)

    async def scenario():
        async with RefinementService(max_pending=wave_size + 1) as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=waves * wave_size
            )
            fact_ids = prior.fact_ids
            started = time.perf_counter()
            for wave in range(waves):
                # A whole wave lands in the queue before the drainer wakes:
                # the batcher should fold it into far fewer executor hops.
                await asyncio.gather(
                    *(
                        service.post_answers(
                            created.session_id,
                            {fact_ids[(wave + i) % len(fact_ids)]: i % 2 == 0},
                        )
                        for i in range(wave_size)
                    )
                )
            elapsed = time.perf_counter() - started
            return elapsed, service.metrics()

    elapsed, metrics = asyncio.run(scenario())
    merges = metrics["merges"]["count"]
    batches = metrics["merges"]["batches"]
    assert merges == waves * wave_size
    assert batches < merges, "consecutive queued merges were not batched"

    entry = {
        "suite": "service",
        "description": (
            f"One chatty tenant posting {waves} waves of {wave_size} "
            "concurrent answer posts; the per-session drainer folds each "
            "wave's consecutive merges into single executor hops."
        ),
        "waves": waves,
        "wave_size": wave_size,
        "merges": merges,
        "merge_batches": batches,
        "merges_per_batch": merges / batches,
        "wall_seconds": elapsed,
        "merges_per_second": metrics["merges"]["per_second"],
    }
    _record_scenarios({"service/merge_batching_chatty_tenant": entry})


@pytest.mark.parallel
def test_multi_tenant_throughput_shared_pool():
    tenants, rounds, k = 4, 3, 2
    runtime = RuntimeOptions(workers=2, parallel_threshold=0)
    _, elapsed, metrics, _ = run_tenant_fleet(
        runtime=runtime, pools=1, tenants=tenants, rounds=rounds, k=k,
        num_facts=12, support=1 << 10,
    )
    assert multiprocessing.active_children() == []

    pools = metrics["pools"]
    assert pools["sessions_assigned"] == tenants
    requests = tenants * rounds * 2
    entry = {
        "suite": "service",
        "description": (
            f"{tenants} tenants multiplexed onto ONE shared 2-worker "
            f"persistent pool, {rounds} select/post rounds each (every scan "
            "forced parallel); trajectories identical to standalone serial "
            "sessions, no worker processes left after shutdown."
        ),
        "tenants": tenants,
        "rounds": rounds,
        "k": k,
        "num_facts": 12,
        "support": 1 << 10,
        "workers": 2,
        "pools": 1,
        "requests": requests,
        "wall_seconds": elapsed,
        "requests_per_second": requests / elapsed,
        "selection_latency_ms": metrics["selections"]["latency"],
        "pool_utilisation": pools,
        "identical_task_sequences": True,
    }
    _record_scenarios({f"service/tenants{tenants}_shared_pool_w2": entry})


# -- recovery scenarios (the self-healing runtime under injected faults) -------------

from repro.testing import faults  # noqa: E402
from repro.testing.faults import FaultPlan  # noqa: E402


@pytest.mark.parallel
def test_recovery_latency_worker_kill():
    """service/recovery_worker_kill_w2: cost of one transparent pool rebuild.

    The same single-tenant round loop twice — undisturbed, then with the
    first dispatched worker OOM-killed mid-scan — asserting the recovered
    trajectory is identical and recording what the kill+rebuild cost in
    wall-clock terms.
    """
    rounds, k = 3, 2
    prior = service_distribution(12, 1 << 10, seed=70)
    channel = CrowdModel(0.8)
    runtime = RuntimeOptions(workers=2, parallel_threshold=0)

    async def drive():
        async with RefinementService(runtime, pools=1) as service:
            created = await service.create_session(
                prior, channel, budget=rounds * k, selector=SELECTOR
            )
            started = time.perf_counter()
            trajectory = await drive_tenant(
                service, created.session_id, 0, rounds, k
            )
            elapsed = time.perf_counter() - started
            return trajectory, elapsed, service.metrics()

    baseline_trajectory, baseline_elapsed, _ = asyncio.run(drive())
    with faults.injected(FaultPlan(kill_worker_at_dispatch=1)):
        trajectory, elapsed, metrics = asyncio.run(drive())
    assert multiprocessing.active_children() == []
    assert trajectory == baseline_trajectory, "recovery diverged from baseline"

    recovery = metrics["recovery"]
    assert recovery["worker_crashes"] == 1
    assert recovery["pool_rebuilds"] == 1
    entry = {
        "suite": "service",
        "description": (
            f"One tenant, {rounds} select/post rounds (k={k}) on a shared "
            "2-worker pool, with the first dispatched worker killed mid-scan "
            "(injected, exitcode 73); the supervisor rebuilds the pool "
            "transparently and the trajectory stays identical to the "
            "undisturbed run."
        ),
        "rounds": rounds,
        "k": k,
        "num_facts": 12,
        "support": 1 << 10,
        "workers": 2,
        "baseline_wall_seconds": baseline_elapsed,
        "wall_seconds": elapsed,
        "recovery_overhead_seconds": elapsed - baseline_elapsed,
        "worker_crashes": recovery["worker_crashes"],
        "pool_rebuilds": recovery["pool_rebuilds"],
        "breaker_trips": recovery["breaker_trips"],
        "identical_task_sequences": True,
    }
    _record_scenarios({"service/recovery_worker_kill_w2": entry})


def test_recovery_merge_abort_refund_and_retry():
    """service/recovery_merge_abort_retry: crash-mid-batch repair cost.

    Three queued merges drain as one batch whose second merge crashes; the
    third is aborted and refunded, the client resends both, and the repaired
    posterior must equal the undisturbed run's.  Records the wall-clock cost
    of the fail-refund-retry round trip next to the clean wave.
    """
    prior = service_distribution(10, 256, seed=71)
    fact_ids = prior.fact_ids
    waves = [
        {fact_ids[0]: True, fact_ids[1]: False},
        {fact_ids[2]: True, fact_ids[3]: True},
        {fact_ids[4]: False, fact_ids[5]: True},
    ]

    async def clean_wave():
        async with RefinementService() as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=16
            )
            started = time.perf_counter()
            await asyncio.gather(
                *(service.post_answers(created.session_id, w) for w in waves)
            )
            elapsed = time.perf_counter() - started
            return elapsed, await service.get_posterior(created.session_id)

    async def faulted_wave():
        async with RefinementService() as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=16
            )
            started = time.perf_counter()
            with faults.injected(FaultPlan(fail_merge_at=2)):
                results = await asyncio.gather(
                    *(service.post_answers(created.session_id, w) for w in waves),
                    return_exceptions=True,
                )
            for wave, result in zip(waves, results):
                if isinstance(result, Exception):
                    await service.post_answers(created.session_id, wave)
            elapsed = time.perf_counter() - started
            view = await service.get_posterior(created.session_id)
            return elapsed, view, results

    baseline_elapsed, baseline_view = asyncio.run(clean_wave())
    elapsed, view, results = asyncio.run(faulted_wave())

    failed = sum(isinstance(r, Exception) for r in results)
    assert failed == 2, "expected one crashed merge plus one aborted merge"
    for (mask, prob), (ref_mask, ref_prob) in zip(
        view.support, baseline_view.support
    ):
        assert mask == ref_mask
        assert abs(prob - ref_prob) < 1e-9

    entry = {
        "suite": "service",
        "description": (
            "A 3-merge batch whose second merge crashes (injected): the "
            "earlier merge stands, the later one is aborted and refunded, "
            "the failed work is resent, and the repaired posterior equals "
            "the undisturbed run's (support probabilities within 1e-9)."
        ),
        "waves": len(waves),
        "answers_per_wave": 2,
        "failed_and_retried": failed,
        "baseline_wall_seconds": baseline_elapsed,
        "wall_seconds": elapsed,
        "repair_overhead_seconds": elapsed - baseline_elapsed,
        "identical_posterior": True,
    }
    _record_scenarios({"service/recovery_merge_abort_retry": entry})
