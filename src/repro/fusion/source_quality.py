"""Source quality estimation against gold labels.

These helpers quantify the "sources are only reliable in some domains"
motivation from the paper's introduction (the eCampus.com example: 55 %
consistency on textbooks, 0 % on non-textbooks) and provide ground-truth
source accuracies for dataset validation and reporting.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.fusion.claims import ClaimDatabase
from repro.exceptions import FusionError


def source_accuracy(
    database: ClaimDatabase,
    gold: Mapping[str, bool],
    source_id: str,
    domain_of: Optional[Mapping[str, str]] = None,
    domain: Optional[str] = None,
) -> float:
    """Fraction of a source's claims that are gold-true.

    ``domain_of`` maps entities to a domain label (e.g. textbook vs
    non-textbook); when ``domain`` is given, only claims about entities of
    that domain are counted.
    """
    claims = database.observations_of(source_id)
    relevant = []
    for claim in claims:
        if claim.claim_id not in gold:
            continue
        if domain is not None:
            if domain_of is None:
                raise FusionError("domain filtering requires a domain_of mapping")
            if domain_of.get(claim.entity) != domain:
                continue
        relevant.append(claim)
    if not relevant:
        raise FusionError(
            f"source {source_id!r} has no gold-labelled claims"
            + (f" in domain {domain!r}" if domain else "")
        )
    correct = sum(1 for claim in relevant if gold[claim.claim_id])
    return correct / len(relevant)


def source_error_rates(
    database: ClaimDatabase, gold: Mapping[str, bool]
) -> Dict[str, float]:
    """Per-source error rate (1 − accuracy) over gold-labelled claims.

    Sources with no gold-labelled claims are omitted from the result.
    """
    rates: Dict[str, float] = {}
    for source in database.sources():
        try:
            accuracy = source_accuracy(database, gold, source.source_id)
        except FusionError:
            continue
        rates[source.source_id] = 1.0 - accuracy
    return rates


def domain_reliability_split(
    database: ClaimDatabase,
    gold: Mapping[str, bool],
    domain_of: Mapping[str, str],
    source_id: str,
) -> Dict[str, Tuple[int, float]]:
    """Per-domain ``(claim count, accuracy)`` breakdown for one source.

    Reproduces the eCampus.com-style analysis from the introduction: the same
    source can be reliable in one domain and useless in another.
    """
    breakdown: Dict[str, Tuple[int, float]] = {}
    domains = sorted(set(domain_of.values()))
    for domain in domains:
        try:
            accuracy = source_accuracy(
                database, gold, source_id, domain_of=domain_of, domain=domain
            )
        except FusionError:
            continue
        count = sum(
            1
            for claim in database.observations_of(source_id)
            if claim.claim_id in gold and domain_of.get(claim.entity) == domain
        )
        breakdown[domain] = (count, accuracy)
    return breakdown
