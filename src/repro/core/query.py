"""Facts-of-interest queries for query-based CrowdFusion (Section IV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.distribution import JointDistribution
from repro.exceptions import QueryError


@dataclass(frozen=True)
class Query:
    """A user query naming the facts whose truth values actually matter.

    Parameters
    ----------
    fact_ids:
        The facts of interest (FOI).  Must be non-empty and duplicate-free.
    name:
        Optional human-readable label (used in reports and examples).
    """

    fact_ids: Tuple[str, ...]
    name: str = "query"

    def __post_init__(self) -> None:
        if not self.fact_ids:
            raise QueryError("a query must name at least one fact of interest")
        if len(set(self.fact_ids)) != len(self.fact_ids):
            raise QueryError("query facts of interest must be unique")

    @classmethod
    def of(cls, fact_ids: Sequence[str], name: str = "query") -> "Query":
        """Convenience constructor accepting any sequence of fact ids."""
        return cls(fact_ids=tuple(fact_ids), name=name)

    def validate_against(self, distribution: JointDistribution) -> None:
        """Raise :class:`QueryError` if any FOI is absent from ``distribution``."""
        known = set(distribution.fact_ids)
        missing = [fact_id for fact_id in self.fact_ids if fact_id not in known]
        if missing:
            raise QueryError(f"query references unknown facts: {missing}")

    def interest_distribution(self, distribution: JointDistribution) -> JointDistribution:
        """Return the joint distribution marginalised onto the facts of interest."""
        self.validate_against(distribution)
        return distribution.marginalize(self.fact_ids)

    def utility(self, distribution: JointDistribution) -> float:
        """Query-based PWS-quality ``Q(I) = −H(I)``."""
        return -self.interest_distribution(distribution).entropy()

    def __len__(self) -> int:
        return len(self.fact_ids)
