"""The multi-round CrowdFusion refinement engine (Figure 1 of the paper).

One *round* is a select → publish → collect → merge cycle: a task set of at
most ``k`` facts is chosen by the configured selector, pushed to a crowd
(real platform or simulator), the received answers are merged into the joint
output distribution by Bayes' rule, and the loop repeats while budget
remains.  The engine is agnostic to where the answers come from: anything
that maps a tuple of fact ids to an :class:`~repro.core.answers.AnswerSet`
will do.

The whole run lives on one persistent
:class:`~repro.core.selection.session.RefinementSession`: the Bayesian merge
only reweights the fixed output support, so the selection engine's cached
bit columns and partitions are built once per run and reweighted after each
round instead of being rebuilt from a freshly materialised distribution.
Selectors that are not session-aware transparently fall back to the
materialise-and-select path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector
from repro.core.selection.parallel import ParallelPolicy, fork_available
from repro.core.selection.session import RefinementSession
from repro.core.utility import pws_quality
from repro.exceptions import BudgetError, SelectionError

# Sentinel distinguishing "caller explicitly passed the deprecated keyword"
# from its old default, so the DeprecationWarning only fires on actual use.
_UNSET: object = object()


class AnswerProvider(Protocol):
    """Anything able to answer a batch of "is this fact true?" tasks.

    Both :class:`repro.crowdsim.platform.SimulatedPlatform` and plain
    functions satisfy this protocol.
    """

    def collect(self, task_ids: Sequence[str]) -> AnswerSet:  # pragma: no cover - protocol
        """Return one aggregated crowd judgment per requested fact."""
        ...


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one select–collect–merge round.

    The full :class:`SelectionResult` is stored once; the scalar convenience
    accessors (``selection_objective``, ``selection_seconds``,
    ``selection_stats``) are derived properties so they can never drift from
    the stats they summarise.
    """

    round_index: int
    task_ids: Tuple[str, ...]
    answers: AnswerSet
    utility_before: float
    utility_after: float
    cumulative_cost: int
    selection: SelectionResult = field(
        default_factory=lambda: SelectionResult(task_ids=(), objective=0.0)
    )

    @property
    def selection_stats(self) -> SelectionStats:
        """Full selector bookkeeping (evaluations, cache hits, lazy skips, …)."""
        return self.selection.stats

    @property
    def selection_objective(self) -> float:
        """Objective value (``H(T)`` or query utility) achieved by the selector."""
        return self.selection.objective

    @property
    def selection_seconds(self) -> float:
        """Wall-clock time the selector spent choosing this round's tasks."""
        return self.selection.stats.elapsed_seconds

    @property
    def utility_gain(self) -> float:
        """Realised utility improvement of this round (may be negative)."""
        return self.utility_after - self.utility_before


@dataclass
class EngineResult:
    """Final state and full history of one CrowdFusion run."""

    initial_distribution: JointDistribution
    final_distribution: JointDistribution
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        """Total number of tasks asked over all rounds."""
        return sum(len(record.task_ids) for record in self.rounds)

    @property
    def final_utility(self) -> float:
        """PWS-quality of the final distribution."""
        return pws_quality(self.final_distribution)

    @property
    def initial_utility(self) -> float:
        """PWS-quality of the prior distribution."""
        return pws_quality(self.initial_distribution)

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Final per-fact true/false decisions."""
        return self.final_distribution.predicted_labels(threshold)

    def utility_curve(self) -> List[Tuple[int, float]]:
        """``(cumulative cost, utility)`` points, starting from the prior."""
        curve = [(0, self.initial_utility)]
        curve.extend(
            (record.cumulative_cost, record.utility_after) for record in self.rounds
        )
        return curve


class CrowdFusionEngine:
    """Budgeted, multi-round crowdsourced refinement of a fusion result.

    Parameters
    ----------
    selector:
        Task-selection strategy (any :class:`TaskSelector`).
    crowd:
        Channel model used both for selection and for Bayesian merging —
        the paper's uniform :class:`~repro.core.crowd.CrowdModel` or any
        heterogeneous :class:`~repro.core.crowd.ChannelModel`.
    budget:
        Total number of tasks that may be asked (``B`` in the paper).
    tasks_per_round:
        Maximum number of tasks per round (``k``); the last round may be
        smaller if the remaining budget is smaller.
    reselect_asked_facts:
        Whether facts asked in earlier rounds may be selected again.  The
        paper allows re-asking (the posterior keeps them uncertain if the
        crowd disagreed with the prior), which is the default.
    parallel:
        Optional :class:`~repro.core.selection.parallel.ParallelPolicy`
        applied to the selector (when it supports parallel candidate scans):
        each round's scan may then be sharded across a fork-shared worker
        pool, with the policy's auto-serial threshold protecting small runs.
        When ``runtime`` is given and ``parallel`` is not, the policy is
        derived from the runtime options.
    runtime:
        Typed :class:`~repro.core.runtime.RuntimeOptions` carrying the
        execution knobs (workers, persistent pool, re-calibration) in one
        validated object — the supported replacement for the deprecated
        ``recalibrate_channels`` / ``persistent_pool`` booleans.
    recalibrate_channels:
        Deprecated — pass ``runtime=RuntimeOptions(recalibrate=True)``.
        When true, the run's :class:`RefinementSession` re-estimates per-fact
        channel accuracies from answer/posterior agreement as rounds
        accumulate (adaptive re-calibration).
    persistent_pool:
        Deprecated — pass ``runtime=RuntimeOptions(workers=...,
        persistent_pool=True)``.  When true (requires ``parallel``), the
        run's session owns one *persistent* worker pool that survives every
        round's Bayesian merge — posteriors are shipped to the already-forked
        workers through a shared-memory snapshot ring — instead of the
        selector re-forking a pool per selection call.  Needs the ``fork``
        start method.
    """

    def __init__(
        self,
        selector: TaskSelector,
        crowd: ChannelModel,
        budget: int,
        tasks_per_round: int,
        reselect_asked_facts: bool = True,
        parallel: Optional[ParallelPolicy] = None,
        recalibrate_channels: object = _UNSET,
        persistent_pool: object = _UNSET,
        runtime: Optional[RuntimeOptions] = None,
    ):
        if budget <= 0:
            raise BudgetError(f"budget must be positive, got {budget}")
        if tasks_per_round <= 0:
            raise BudgetError(f"tasks_per_round must be positive, got {tasks_per_round}")
        legacy_keywords = [
            name
            for name, value in (
                ("recalibrate_channels", recalibrate_channels),
                ("persistent_pool", persistent_pool),
            )
            if value is not _UNSET
        ]
        if legacy_keywords:
            if runtime is not None:
                raise SelectionError(
                    "CrowdFusionEngine received both runtime= and the "
                    f"deprecated keyword(s) {', '.join(legacy_keywords)}; "
                    "configure everything on RuntimeOptions"
                )
            warnings.warn(
                f"CrowdFusionEngine({', '.join(legacy_keywords)}=...) is "
                "deprecated; pass runtime=RuntimeOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        recalibrate_resolved = (
            bool(recalibrate_channels) if recalibrate_channels is not _UNSET else False
        )
        persistent_resolved = (
            bool(persistent_pool) if persistent_pool is not _UNSET else False
        )
        if runtime is not None:
            recalibrate_resolved = runtime.recalibrate
            persistent_resolved = runtime.persistent_pool
            if parallel is None:
                parallel = runtime.parallel_policy
        if persistent_resolved:
            if parallel is None:
                raise SelectionError(
                    "persistent_pool requires a parallel policy (pass "
                    "parallel=ParallelPolicy(...) alongside persistent_pool=True)"
                )
            if not fork_available():
                raise SelectionError(
                    "persistent worker pools need the 'fork' start method, "
                    "which this platform does not provide; drop "
                    "persistent_pool or run on a fork-capable OS"
                )
        if parallel is not None and not hasattr(selector, "parallel"):
            warnings.warn(
                f"selector {type(selector).__name__} does not support parallel "
                "candidate scans; the parallel policy is ignored",
                RuntimeWarning,
                stacklevel=2,
            )
        self._selector = selector
        self._crowd = crowd
        self._budget = budget
        self._tasks_per_round = tasks_per_round
        self._reselect = reselect_asked_facts
        self._parallel = parallel
        self._recalibrate = recalibrate_resolved
        self._persistent_pool = persistent_resolved
        self._kernel = runtime.kernel if runtime is not None else "auto"

    @property
    def budget(self) -> int:
        """Total task budget ``B``."""
        return self._budget

    @property
    def tasks_per_round(self) -> int:
        """Per-round task cap ``k``."""
        return self._tasks_per_round

    def run(
        self,
        distribution: JointDistribution,
        answer_provider: "AnswerProvider | Callable[[Sequence[str]], AnswerSet]",
        round_callback: Optional[Callable[[RoundRecord, JointDistribution], None]] = None,
    ) -> EngineResult:
        """Execute rounds until the budget is exhausted or nothing remains to ask.

        Parameters
        ----------
        distribution:
            Prior joint output distribution (output of a machine-only fusion
            method, or a uniform / independent prior).
        answer_provider:
            Object with a ``collect(task_ids)`` method, or a plain callable
            taking the task ids and returning an :class:`AnswerSet`.
        round_callback:
            Optional hook invoked after each round with the round record and
            the updated distribution (used by the experiment runner to track
            quality curves).
        """
        collect = getattr(answer_provider, "collect", None)
        if collect is None:
            collect = answer_provider

        # Apply the engine's parallel policy for the duration of this run
        # only: the selector object belongs to the caller and may serve other
        # engines with different (or no) policies.  With a persistent pool
        # the session owns the policy instead, so the selector is untouched.
        if (
            self._parallel is not None
            and not self._persistent_pool
            and hasattr(self._selector, "parallel")
        ):
            previous_policy = self._selector.parallel
            self._selector.parallel = self._parallel
            try:
                return self._run_rounds(distribution, collect, round_callback)
            finally:
                self._selector.parallel = previous_policy
        return self._run_rounds(distribution, collect, round_callback)

    def _run_rounds(
        self,
        distribution: JointDistribution,
        collect: Callable[[Sequence[str]], AnswerSet],
        round_callback: Optional[Callable[[RoundRecord, JointDistribution], None]],
    ) -> EngineResult:
        result = EngineResult(
            initial_distribution=distribution, final_distribution=distribution
        )
        session = RefinementSession(
            distribution,
            self._crowd,
            runtime=RuntimeOptions(
                recalibrate=self._recalibrate, kernel=self._kernel
            ),
            parallel=self._parallel if self._persistent_pool else None,
        )
        try:
            return self._refine(session, result, collect, round_callback)
        finally:
            # Releases the persistent worker pool (a no-op for serial runs)
            # even when a selector or the answer provider raises mid-round.
            session.close()

    def _refine(
        self,
        session: RefinementSession,
        result: EngineResult,
        collect: Callable[[Sequence[str]], AnswerSet],
        round_callback: Optional[Callable[[RoundRecord, JointDistribution], None]],
    ) -> EngineResult:
        asked: set = set()
        remaining_budget = self._budget
        round_index = 0

        while remaining_budget > 0:
            k = min(self._tasks_per_round, remaining_budget, session.num_facts)
            exclude: Tuple[str, ...] = ()
            if not self._reselect:
                exclude = tuple(asked)
                if len(exclude) >= session.num_facts:
                    break
            selection: SelectionResult = self._selector.select_with_session(
                session, k, exclude=exclude
            )
            if not selection.task_ids:
                # No task offers positive expected gain: stop early.
                break

            answers = collect(selection.task_ids)
            utility_before = session.utility()
            session.merge(answers)
            utility_after = session.utility()

            remaining_budget -= len(selection.task_ids)
            asked.update(selection.task_ids)
            round_index += 1
            record = RoundRecord(
                round_index=round_index,
                task_ids=selection.task_ids,
                answers=answers,
                utility_before=utility_before,
                utility_after=utility_after,
                cumulative_cost=self._budget - remaining_budget,
                selection=selection,
            )
            result.rounds.append(record)
            if round_callback is not None:
                round_callback(record, session.distribution)

        result.final_distribution = session.distribution
        return result
