"""Equivalence suite for parallel candidate sharding and batched queries.

The parallel subsystem's contract is *pure acceleration*: sharding a greedy
iteration's candidate scan across a fork-shared worker pool must select
exactly the task sets — same ids, same order, objectives within 1e-9 — that
the serial scan selects, across worker counts, channel models and the
pruning variant; and batched multi-query scoring through one session's
shared caches must match one fresh engine per query.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.query import Query
from repro.core.selection import (
    GreedySelector,
    ParallelEvaluator,
    ParallelPolicy,
    QueryGreedySelector,
    RefinementSession,
    SessionPool,
    get_selector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.parallel import DEFAULT_PARALLEL_THRESHOLD, fork_available
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution
from repro.exceptions import SelectionError


@st.composite
def coarse_distributions(draw, max_facts=6):
    """Random sparse joints with coarse rational masses (see engine tests)."""
    n = draw(st.integers(min_value=2, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=2,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(support),
            max_size=len(support),
        )
    )
    return JointDistribution(fact_ids, dict(zip(support, map(float, masses))))


accuracies = st.sampled_from([0.6, 0.75, 0.8, 0.9])

#: Forces the pool for any scan with at least two candidates.
FORCE_PARALLEL = 0


def dense_distribution(num_facts, support, seed=0):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def heterogeneous_channel(fact_ids):
    return PerFactChannelModel(
        0.8, {fact_id: 0.6 + 0.03 * index for index, fact_id in enumerate(fact_ids)}
    )


class TestParallelPolicy:
    def test_validation(self):
        with pytest.raises(SelectionError):
            ParallelPolicy(workers=0)
        with pytest.raises(SelectionError):
            ParallelPolicy(parallel_threshold=-1)
        with pytest.raises(SelectionError):
            ParallelPolicy(chunk_size=0)

    def test_single_worker_never_parallelises(self):
        policy = ParallelPolicy(workers=1, parallel_threshold=0)
        assert not policy.should_parallelise(1000, 1 << 20)

    def test_threshold_gates_on_scan_work(self):
        policy = ParallelPolicy(workers=4, parallel_threshold=1 << 10)
        if not fork_available():  # pragma: no cover - non-fork platforms
            pytest.skip("fork start method unavailable")
        assert policy.should_parallelise(num_candidates=64, support_size=1 << 10)
        assert not policy.should_parallelise(num_candidates=2, support_size=64)

    def test_lone_candidate_stays_serial(self):
        policy = ParallelPolicy(workers=4, parallel_threshold=0)
        assert not policy.should_parallelise(num_candidates=1, support_size=1 << 20)

    def test_chunk_size_resolution(self):
        assert ParallelPolicy(workers=2, chunk_size=7).resolved_chunk_size(100) == 7
        derived = ParallelPolicy(workers=2).resolved_chunk_size(100)
        assert 1 <= derived <= 100
        assert ParallelPolicy(workers=8).resolved_chunk_size(3) >= 1

    def test_default_threshold_spares_table5_workloads(self):
        # The Table-V hot path (tens of candidates, few-thousand-row support)
        # must stay under the default threshold, or small runs would fork.
        assert 64 * 4096 < DEFAULT_PARALLEL_THRESHOLD


class TestAutoSerialThreshold:
    """A parallel-configured selector below threshold is exactly serial."""

    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_below_threshold_matches_serial_without_forking(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        serial = GreedySelector().select(dist, crowd, k)
        configured = GreedySelector(parallel=ParallelPolicy(workers=4))
        result = configured.select(dist, crowd, k)
        assert result.task_ids == serial.task_ids
        assert result.objective == serial.objective
        assert result.stats.workers == 0
        assert result.stats.chunk_size == 0
        assert result.stats.parallel_evaluations == 0

    def test_evaluator_reports_serial_below_threshold(self):
        dist = dense_distribution(8, 64)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        with ParallelEvaluator(engine, ParallelPolicy(workers=4)) as evaluator:
            state = engine.initial_state()
            assert evaluator.evaluate(state, list(dist.fact_ids)) is None
            assert evaluator.workers == 0


@pytest.mark.parallel
class TestParallelEquivalence:
    @given(
        coarse_distributions(),
        accuracies,
        st.integers(min_value=1, max_value=4),
        st.sampled_from([1, 2, 4]),
        st.sampled_from(["greedy", "greedy_prune_pre"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_parallel_matches_serial(self, dist, accuracy, k, workers, name):
        crowd = CrowdModel(accuracy)
        serial = get_selector(name).select(dist, crowd, k)
        parallel_selector = get_selector(name)
        parallel_selector.parallel = ParallelPolicy(
            workers=workers, parallel_threshold=FORCE_PARALLEL
        )
        result = parallel_selector.select(dist, crowd, k)
        assert result.task_ids == serial.task_ids
        assert abs(result.objective - serial.objective) < 1e-9
        assert result.stats.candidate_evaluations == serial.stats.candidate_evaluations
        assert result.stats.pruned_facts == serial.stats.pruned_facts

    @given(coarse_distributions(max_facts=5), st.integers(min_value=1, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_parallel_matches_serial_heterogeneous(self, dist, k):
        channel = heterogeneous_channel(dist.fact_ids)
        serial = GreedySelector().select(dist, channel, k)
        parallel_selector = GreedySelector(
            parallel=ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        )
        result = parallel_selector.select(dist, channel, k)
        assert result.task_ids == serial.task_ids
        assert abs(result.objective - serial.objective) < 1e-9

    def test_worker_entropies_are_bit_identical(self):
        dist = dense_distribution(10, 256, seed=3)
        crowd = CrowdModel(0.8)
        engine = EntropyEngine(dist, crowd)
        state = engine.initial_state()
        candidates = list(dist.fact_ids)
        reference_engine = EntropyEngine(dist, crowd)
        reference_state = reference_engine.initial_state()
        expected = [
            reference_engine.extension_entropy(reference_state, fact_id)
            for fact_id in candidates
        ]
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with ParallelEvaluator(engine, policy) as evaluator:
            scored = evaluator.evaluate(state, candidates)
        # Replayed worker state runs the identical float operations, so the
        # entropies agree to the last bit, not merely within tolerance.
        assert scored == expected
        assert evaluator.parallel_evaluations == len(candidates)

    def test_session_selection_with_parallel_policy(self):
        dist = dense_distribution(12, 512, seed=5)
        crowd = CrowdModel(0.8)
        serial_session = RefinementSession(dist, crowd)
        serial = serial_session.select(GreedySelector(), 4)
        parallel_session = RefinementSession(dist, crowd)
        selector = GreedySelector(
            parallel=ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        )
        result = parallel_session.select(selector, 4)
        assert result.task_ids == serial.task_ids
        assert abs(result.objective - serial.objective) < 1e-9
        assert result.stats.workers == 2
        assert result.stats.parallel_evaluations > 0


@pytest.mark.parallel
@pytest.mark.slow
class TestParallelEquivalenceAtScale:
    def test_scale_corpus_parallel_matches_serial(self):
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=32, support_size=1 << 20, seed=11)
        )
        crowd = CrowdModel(0.8)
        serial = GreedySelector().select(dist, crowd, 2)
        for workers in (2, 4):
            selector = GreedySelector(parallel=ParallelPolicy(workers=workers))
            result = selector.select(dist, crowd, 2)
            assert result.task_ids == serial.task_ids
            assert abs(result.objective - serial.objective) < 1e-9
            assert result.stats.workers == workers
            assert result.stats.parallel_evaluations > 0


class TestBatchedMultiQuery:
    @given(
        coarse_distributions(max_facts=5),
        accuracies,
        st.integers(min_value=1, max_value=3),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_batched_queries_match_per_query_engines(self, dist, accuracy, k, data):
        crowd = CrowdModel(accuracy)
        num_queries = data.draw(st.integers(min_value=1, max_value=3))
        queries = [
            Query.of(
                data.draw(
                    st.lists(
                        st.sampled_from(list(dist.fact_ids)),
                        min_size=1,
                        max_size=min(3, dist.num_facts),
                        unique=True,
                    )
                )
            )
            for _ in range(num_queries)
        ]
        session = RefinementSession(dist, crowd)
        batched = session.select_queries(queries, k)
        for query, result in zip(queries, batched):
            fresh = QueryGreedySelector(query).select(dist, crowd, k)
            assert result.task_ids == fresh.task_ids
            assert abs(result.objective - fresh.objective) < 1e-9

    def test_batched_queries_after_merge_match_materialised_posterior(self):
        dist = dense_distribution(9, 128, seed=7)
        crowd = CrowdModel(0.8)
        queries = [Query.of(("f0", "f4")), Query.of(("f2",)), Query.of(("f6", "f8"))]
        session = RefinementSession(dist, crowd)
        session.merge(AnswerSet.from_mapping({"f0": True, "f5": False}))
        batched = session.select_queries(queries, 3)
        posterior = session.distribution
        for query, result in zip(queries, batched):
            fresh = QueryGreedySelector(query).select(posterior, crowd, 3)
            assert result.task_ids == fresh.task_ids
            assert abs(result.objective - fresh.objective) < 1e-9

    def test_views_share_the_bit_column_cache(self):
        dist = dense_distribution(8, 64, seed=2)
        session = RefinementSession(dist, CrowdModel(0.8))
        view_a = session.engine_for_interest(("f0", "f1"))
        view_b = session.engine_for_interest(("f5",))
        assert view_a._bits is session.engine._bits
        assert view_b._bits is session.engine._bits
        # The cached view is reused until the next merge invalidates it.
        assert session.engine_for_interest(("f0", "f1")) is view_a
        session.merge(AnswerSet.from_mapping({"f0": True}))
        assert session.engine_for_interest(("f0", "f1")) is not view_a

    def test_matching_interest_set_uses_the_session_engine(self):
        dist = dense_distribution(6, 32, seed=4)
        session = RefinementSession(dist, CrowdModel(0.8), interest_ids=("f1", "f3"))
        assert session.engine_for_interest(("f1", "f3")) is session.engine

    def test_views_refuse_reweight(self):
        dist = dense_distribution(6, 32, seed=6)
        session = RefinementSession(dist, CrowdModel(0.8))
        view = session.engine_for_interest(("f2",))
        with pytest.raises(SelectionError):
            view.reweight(np.ones(dist.support_size))

    def test_session_pool_batches_queries_by_key(self):
        dist = dense_distribution(7, 64, seed=8)
        crowd = CrowdModel(0.8)
        pool = SessionPool()
        pool.add("entity", dist, crowd)
        queries = [Query.of(("f0",)), Query.of(("f3", "f5"))]
        pooled = pool.select_queries("entity", queries, 2)
        direct = RefinementSession(dist, crowd).select_queries(queries, 2)
        assert [r.task_ids for r in pooled] == [r.task_ids for r in direct]
