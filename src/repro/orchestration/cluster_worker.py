"""Shard worker for the multi-host cluster orchestrator.

A cluster worker connects to the coordinator over TCP, proves with a
fingerprint digest that it was built for the same sweep, then serves
:class:`~repro.orchestration.wire.LeaseGrant` ranges: each granted entity
index runs through the exact
:func:`~repro.evaluation.experiment.run_entity_trajectory` unit every other
execution path uses (identical per-entity seed derivation), and its
JSON-ready trajectory is sent back as an
:class:`~repro.orchestration.wire.EntityResult`.

Liveness is a daemon *heartbeat pump* thread: the main loop may spend many
seconds inside one entity trajectory, so heartbeats must not wait for it.
The pump shares the socket with the main loop (sends are serialised inside
:class:`~repro.orchestration.wire.MessageStream`) and beats even between
leases, so the coordinator can tell an idle worker from a dead one.  A
worker that loses its connection retries for a bounded reconnect window —
long enough to ride out a coordinator restart (`--resume`), short enough
that an orphaned worker whose coordinator is gone for good exits by itself
instead of leaking.

The same entry point serves both deployment shapes: a remote process started
by ``crowdfusion shard-worker --connect HOST:PORT`` (problems and config
rebuilt from its own CLI flags, checked via the fingerprint digest) and a
local subprocess forked by the coordinator for loopback parallelism
(context inherited copy-on-write through :data:`_CLUSTER_CONTEXT`).
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.evaluation.experiment import (
    EntityProblem,
    ExperimentConfig,
    run_entity_trajectory,
)
from repro.exceptions import OrchestrationError
from repro.orchestration import wire
from repro.orchestration.worker import trajectory_to_payload
from repro.testing import faults

#: Work published to coordinator-forked local workers before the fork:
#: ``(problems, config, budget_overrides)``.
_CLUSTER_CONTEXT: Optional[
    Tuple[List[EntityProblem], ExperimentConfig, Dict[str, int]]
] = None

#: The coordinator's listening socket, published just before local workers
#: fork.  Each child must close its inherited copy first thing: a leaked
#: listen fd would keep the port accepting handshakes after the coordinator
#: dies, so orphaned workers would "reconnect" into a backlog nobody serves
#: and block in recv() forever instead of expiring their reconnect window.
_INHERITED_LISTENER: Optional[socket.socket] = None

#: How long a disconnected worker keeps trying to reach the coordinator
#: before giving up — the window that lets workers survive a coordinator
#: SIGKILL + ``--resume`` without being leaked forever if the coordinator
#: never comes back.
DEFAULT_RECONNECT_WINDOW_S = 15.0

_CONNECT_RETRY_S = 0.2


@dataclass
class WorkerSummary:
    """What one worker did before the coordinator sent it home."""

    worker: str
    entities_ok: int = 0
    entities_failed: int = 0
    leases_served: int = 0
    reconnects: int = 0


class _HeartbeatPump:
    """Daemon thread beating ``heartbeat_s`` while the main loop computes."""

    def __init__(
        self, stream: wire.MessageStream, worker: str, heartbeat_s: float
    ) -> None:
        self._stream = stream
        self._worker = worker
        self._heartbeat_s = heartbeat_s
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._lease = ""
        self._epoch = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def set_lease(self, lease: str, epoch: int) -> None:
        with self._lock:
            self._lease = lease
            self._epoch = epoch

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._heartbeat_s):
            directive = faults.fire("heartbeat", worker=self._worker)
            if directive == "suppress":
                continue  # injected zombie: alive, computing, silent
            with self._lock:
                lease, epoch = self._lease, self._epoch
            try:
                self._stream.send(wire.Heartbeat(self._worker, lease, epoch))
            except (wire.ConnectionLost, wire.WireProtocolError):
                return  # the main loop will see the dead socket too


def _connect(host: str, port: int, deadline: float) -> socket.socket:
    """Dial the coordinator, retrying until ``deadline``."""
    while True:
        try:
            return socket.create_connection((host, port), timeout=5.0)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise OrchestrationError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within the reconnect window: {error}"
                )
            time.sleep(_CONNECT_RETRY_S)


def run_shard_worker(
    problems: List[EntityProblem],
    config: ExperimentConfig,
    budget_overrides: Dict[str, int],
    host: str,
    port: int,
    worker_id: str,
    reconnect_window_s: float = DEFAULT_RECONNECT_WINDOW_S,
) -> WorkerSummary:
    """Serve lease grants from the coordinator until it says shutdown.

    Returns a :class:`WorkerSummary` on a clean shutdown; raises
    :class:`OrchestrationError` when the coordinator refuses the handshake
    (wrong sweep) or stays unreachable past the reconnect window.
    """
    from repro.orchestration.orchestrator import _fingerprint

    digest = wire.fingerprint_digest(
        _fingerprint(problems, config, dict(budget_overrides))
    )
    summary = WorkerSummary(worker=worker_id)
    deadline = time.monotonic() + reconnect_window_s
    while True:
        try:
            sock = _connect(host, port, deadline)
        except OrchestrationError:
            if summary.leases_served or summary.entities_ok:
                # The coordinator went away for good after we did real work —
                # a normal end of life for an orphan riding out a resume.
                return summary
            raise
        stream = wire.MessageStream(sock)
        pump: Optional[_HeartbeatPump] = None
        try:
            stream.send(wire.Hello(worker=worker_id, fingerprint=digest))
            welcome = stream.recv()
            if isinstance(welcome, wire.WireError):
                raise OrchestrationError(
                    f"coordinator refused worker {worker_id}: "
                    f"{welcome.code}: {welcome.message}"
                )
            if not isinstance(welcome, wire.Welcome):
                raise wire.WireProtocolError(
                    f"expected welcome, got {type(welcome).__name__}"
                )
            pump = _HeartbeatPump(stream, worker_id, welcome.heartbeat_s)
            pump.start()
            # Connected: future disconnects get a fresh reconnect window.
            deadline = time.monotonic() + reconnect_window_s
            if _serve(stream, pump, problems, config, budget_overrides, summary):
                return summary
        except (wire.ConnectionLost, wire.WireProtocolError):
            summary.reconnects += 1
            time.sleep(_CONNECT_RETRY_S)
        finally:
            if pump is not None:
                pump.stop()
            stream.close()


def _serve(
    stream: wire.MessageStream,
    pump: _HeartbeatPump,
    problems: List[EntityProblem],
    config: ExperimentConfig,
    budget_overrides: Dict[str, int],
    summary: WorkerSummary,
) -> bool:
    """One connection's message loop; ``True`` on a clean shutdown."""
    while True:
        message = stream.recv()
        if isinstance(message, wire.LeaseGrant):
            pump.set_lease(message.lease, message.epoch)
            summary.leases_served += 1
            for index in range(message.start, message.stop):
                try:
                    faults.fire("shard_entity", index=index)
                    trajectory = run_entity_trajectory(
                        problems[index], index, config, budget_overrides
                    )
                except BaseException as error:  # noqa: BLE001 - reported upstream
                    result = wire.EntityResult(
                        worker=summary.worker,
                        lease=message.lease,
                        epoch=message.epoch,
                        index=index,
                        ok=False,
                        error=f"{type(error).__name__}: {error}",
                    )
                    summary.entities_failed += 1
                else:
                    result = wire.EntityResult(
                        worker=summary.worker,
                        lease=message.lease,
                        epoch=message.epoch,
                        index=index,
                        ok=True,
                        payload=trajectory_to_payload(trajectory),
                    )
                    summary.entities_ok += 1
                directive = faults.fire("entity_result_send", index=index)
                stream.send(result)
                if directive == "duplicate":
                    stream.send(result)  # injected duplicated delivery
            pump.set_lease("", 0)
        elif isinstance(message, wire.LeaseRevoked):
            # Ranges run synchronously inside the grant handler, so by the
            # time a revocation is read the range is already finished (its
            # late results were fenced server-side); nothing to unwind.
            pump.set_lease("", 0)
        elif isinstance(message, wire.Shutdown):
            return True
        elif isinstance(message, wire.WireError):
            raise OrchestrationError(
                f"coordinator error: {message.code}: {message.message}"
            )
        else:
            raise wire.WireProtocolError(
                f"unexpected message {type(message).__name__} from coordinator"
            )


def local_worker_main(host: str, port: int, worker_id: str) -> None:
    """Entry point of a coordinator-forked local worker subprocess."""
    if _INHERITED_LISTENER is not None:
        try:
            _INHERITED_LISTENER.close()
        except OSError:  # pragma: no cover - nothing left to leak
            pass
    assert _CLUSTER_CONTEXT is not None, "local worker forked without context"
    problems, config, budget_overrides = _CLUSTER_CONTEXT
    try:
        run_shard_worker(problems, config, budget_overrides, host, port, worker_id)
    except OrchestrationError:
        # An orphaned or refused local worker must exit quietly: the
        # coordinator (or its successor) owns all reporting.
        pass
