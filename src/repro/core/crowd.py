"""The noisy-crowd answer model (Section II-B of the paper).

A crowd is characterised by a single accuracy ``Pc ∈ [0.5, 1]``: every task
("is fact *f* true?") is answered correctly with probability ``Pc``,
independently of all other tasks.  Given the joint output distribution this
induces a distribution over *answer sets* (Equation 2), whose entropy
``H(T)`` is exactly what the task-selection algorithms maximise.

Because each task is an independent binary symmetric channel, the answer
distribution is the projected output distribution convolved with one
two-point noise kernel per task — ``O(k · 2^k)`` instead of the ``O(4^k)``
cost of scoring every (answer, projection) pair, which is what makes the
vectorized selection engine fast.  The historical pure-Python evaluation
survives in :mod:`repro.core.selection.reference` for equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.distribution import JointDistribution
from repro.core.entropy import bsc_transform, bsc_transform_rows, entropy_bits, project_columns
from repro.exceptions import InvalidCrowdModelError, SelectionError

#: Refuse to materialise answer distributions over more than 2^24 vectors.
_MAX_TASK_BITS = 24

#: Cap on dense (interest cells × answer vectors) tables — 2^26 float64
#: entries is 512 MB, past which the request is almost certainly a mistake.
_MAX_JOINT_ENTRIES = 1 << 26


def _validated_positions(
    distribution: JointDistribution, task_ids: Sequence[str]
) -> "tuple[int, ...]":
    if not task_ids:
        raise SelectionError("task set must contain at least one fact")
    if len(set(task_ids)) != len(task_ids):
        raise SelectionError("task set contains duplicate fact ids")
    if len(task_ids) > _MAX_TASK_BITS:
        raise SelectionError(
            f"refusing to enumerate 2^{len(task_ids)} answer vectors "
            f"(task sets are limited to {_MAX_TASK_BITS} facts)"
        )
    return distribution.positions(task_ids)


@dataclass(frozen=True)
class CrowdModel:
    """Crowd answer model with a shared worker accuracy ``Pc``.

    Parameters
    ----------
    accuracy:
        Probability that a worker's answer to any single task is correct.
        Must lie in ``[0.5, 1.0]`` (Definition 2).
    """

    accuracy: float

    def __post_init__(self) -> None:
        if not 0.5 <= self.accuracy <= 1.0:
            raise InvalidCrowdModelError(
                f"crowd accuracy must be in [0.5, 1.0], got {self.accuracy}"
            )

    @property
    def error_rate(self) -> float:
        """Probability that a single answer is wrong (``1 − Pc``)."""
        return 1.0 - self.accuracy

    def answer_likelihood(self, num_same: int, num_diff: int) -> float:
        """Likelihood ``P(Ans | o) = Pc^#Same · (1 − Pc)^#Diff`` of an answer set.

        ``num_same`` and ``num_diff`` count the selected facts whose crowd
        judgment agrees / disagrees with the candidate output ``o``.
        """
        if num_same < 0 or num_diff < 0:
            raise InvalidCrowdModelError("agreement counts must be non-negative")
        return (self.accuracy ** num_same) * (self.error_rate ** num_diff)

    # -- answer-set distributions (Equation 2) --------------------------------------

    def answer_masses(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> np.ndarray:
        """Dense answer-vector mass array for ``task_ids`` (Equation 2).

        Entry ``a`` is ``P(a) = Σ_o P(o) · Pc^#Same(a, o) · (1 − Pc)^#Diff(a, o)``,
        computed by projecting the support onto the task positions and pushing
        the projected distribution through ``k`` independent binary symmetric
        channels.
        """
        positions = _validated_positions(distribution, task_ids)
        k = len(positions)
        masks, probabilities = distribution.support_arrays()
        projected = project_columns(masks, positions)
        grouped = np.bincount(projected, weights=probabilities, minlength=1 << k)
        return bsc_transform(grouped, k, self.accuracy)

    def answer_distribution(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> JointDistribution:
        """Distribution over crowd answer sets for the tasks ``task_ids``.

        The result is returned as a :class:`JointDistribution` whose "facts"
        are the selected task ids and whose assignments are answer vectors.
        """
        masses = self.answer_masses(distribution, task_ids)
        kept = np.nonzero(masses)[0]
        answer_probs = dict(zip(kept.tolist(), masses[kept].tolist()))
        return JointDistribution(task_ids, answer_probs, normalise=True)

    def task_entropy(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> float:
        """Entropy ``H(T)`` of the answer-set distribution for ``task_ids``.

        This is the objective of the task-selection problem (Equation 4).
        """
        return entropy_bits(self.answer_masses(distribution, task_ids))

    def full_answer_joint(self, distribution: JointDistribution) -> JointDistribution:
        """Answer joint distribution over *all* facts (the paper's preprocessing).

        This is Table IV of the running example: the distribution of the
        crowd's answers if every fact were asked.  Marginalising it over any
        task set yields that task set's answer distribution, which is what
        Algorithm 2 exploits.
        """
        return self.answer_distribution(distribution, distribution.fact_ids)

    # -- joint fact/answer distributions (needed by query-based selection) ----------

    def joint_fact_answer_entropy(
        self,
        distribution: JointDistribution,
        interest_ids: Sequence[str],
        task_ids: Sequence[str],
    ) -> float:
        """Joint entropy ``H(I, T)`` of facts-of-interest values and crowd answers.

        Used by query-based CrowdFusion (Section IV), where the utility after
        asking is ``Q(I | T) = H(T) − H(I, T)``.  If ``task_ids`` is empty the
        result is simply ``H(I)``.
        """
        interest_positions = distribution.positions(interest_ids)
        if not task_ids:
            return distribution.marginalize(interest_ids).entropy()
        task_positions = _validated_positions(distribution, task_ids)
        k = len(task_positions)

        masks, probabilities = distribution.support_arrays()
        interest_sub = project_columns(masks, interest_positions)
        task_sub = project_columns(masks, task_positions)
        # Re-index interest projections densely: only cells present in the
        # support carry mass, so the grouped matrix stays |cells| × 2^k even
        # for large interest sets.
        cells, cell_index = np.unique(interest_sub, return_inverse=True)
        if (cells.size << k) > _MAX_JOINT_ENTRIES:
            raise SelectionError(
                f"joint fact/answer table would need {cells.size} cells x 2^{k} "
                f"answer vectors (> {_MAX_JOINT_ENTRIES} entries); "
                "reduce the task set or the interest set"
            )
        grouped = np.bincount(
            (cell_index << k) | task_sub,
            weights=probabilities,
            minlength=cells.size << k,
        ).reshape(cells.size, 1 << k)
        joint = bsc_transform_rows(grouped, k, self.accuracy)
        return entropy_bits(joint.reshape(-1))
