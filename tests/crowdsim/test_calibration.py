"""Per-worker and per-domain calibration pre-tests."""

import pytest

from repro.core.crowd import CalibratedCrowdModel
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.qualification import (
    calibrate_domain_accuracies,
    calibrate_worker_accuracies,
    pooled_accuracy,
)
from repro.crowdsim.worker import Worker, WorkerPool
from repro.exceptions import PlatformError

GOLD = {f"g{i}": i % 2 == 0 for i in range(12)}


class TestWorkerCalibration:
    def test_estimates_every_worker(self):
        pool = WorkerPool.heterogeneous(6, mean_accuracy=0.8, spread=0.05, seed=11)
        estimates = calibrate_worker_accuracies(pool, GOLD, repetitions=4, seed=5)
        assert set(estimates) == {worker.worker_id for worker in pool}
        for result in estimates.values():
            assert 0.5 <= result.estimated_accuracy <= 1.0
            assert result.sample_size == len(GOLD) * 4
            assert result.interval_low <= result.raw_accuracy <= result.interval_high

    def test_deterministic_given_seed(self):
        pool = WorkerPool.homogeneous(4, accuracy=0.75, seed=0)
        first = calibrate_worker_accuracies(pool, GOLD, repetitions=3, seed=9)
        second = calibrate_worker_accuracies(pool, GOLD, repetitions=3, seed=9)
        assert {k: v.raw_accuracy for k, v in first.items()} == {
            k: v.raw_accuracy for k, v in second.items()
        }

    def test_perfect_workers_score_one(self):
        pool = WorkerPool.homogeneous(3, accuracy=1.0, seed=0)
        estimates = calibrate_worker_accuracies(pool, GOLD, seed=1)
        assert all(r.estimated_accuracy == 1.0 for r in estimates.values())
        assert pooled_accuracy(estimates) == 1.0

    def test_input_validation(self):
        pool = WorkerPool.homogeneous(2, accuracy=0.8, seed=0)
        with pytest.raises(PlatformError):
            calibrate_worker_accuracies(pool, {})
        with pytest.raises(PlatformError):
            calibrate_worker_accuracies(pool, GOLD, repetitions=0)
        with pytest.raises(PlatformError):
            pooled_accuracy({})


class TestDomainCalibration:
    def make_platform(self):
        workers = [
            Worker(
                worker_id=f"w{i}",
                accuracy=0.75,
                domain_skills={"title": 0.99, "author": 0.55},
            )
            for i in range(8)
        ]
        domains = {
            fact_id: ("title" if index % 2 == 0 else "author")
            for index, fact_id in enumerate(GOLD)
        }
        platform = SimulatedPlatform(
            ground_truth=GOLD,
            workers=WorkerPool(workers, seed=23),
            domains=domains,
        )
        return platform, domains

    def test_recovers_domain_skill_ordering(self):
        platform, domains = self.make_platform()
        estimates = calibrate_domain_accuracies(
            platform, GOLD, domains, repetitions=30
        )
        assert set(estimates) == {"title", "author"}
        assert (
            estimates["title"].estimated_accuracy
            > estimates["author"].estimated_accuracy
        )

    def test_estimates_feed_calibrated_channel_model(self):
        platform, domains = self.make_platform()
        estimates = calibrate_domain_accuracies(platform, GOLD, domains, repetitions=10)
        model = CalibratedCrowdModel.from_domain_estimates(
            estimates, domains, default_accuracy=0.75
        )
        for fact_id, domain in domains.items():
            assert model.accuracy_for(fact_id) == estimates[domain].estimated_accuracy

    def test_untagged_gold_rejected(self):
        platform, _ = self.make_platform()
        with pytest.raises(PlatformError):
            calibrate_domain_accuracies(platform, GOLD, {}, repetitions=1)
