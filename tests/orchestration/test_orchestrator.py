"""Checkpointed sharded sweeps: equivalence, resume, retry and quarantine.

The orchestrator's headline contract — a sharded, journalled sweep produces
the *same curve* as the plain in-process experiment runner, and resuming a
partial journal reproduces it bit-for-bit — asserted against the serial
``run_quality_experiment`` as ground truth.  Failure policy (retry with
backoff, poison-entity quarantine after ``max_attempts``) is driven through
the fault plan's ``fail_entity_at`` injector.
"""

import io
import os

import pytest

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import build_problems, run_quality_experiment
from repro.evaluation.experiment import ExperimentConfig
from repro.evaluation.reporting import CurveStream
from repro.exceptions import OrchestrationError
from repro.fusion import ModifiedCRH
from repro.orchestration import (
    OrchestratorConfig,
    run_checkpointed_experiment,
)
from repro.orchestration.journal import read_json, read_records
from repro.orchestration.orchestrator import CHECKPOINT_NAME, JOURNAL_NAME
from repro.testing import faults
from repro.testing.faults import FaultPlan

pytestmark = pytest.mark.parallel


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=6, num_sources=10, max_sources_per_book=8, seed=3)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


CONFIG = ExperimentConfig(selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=11)


def assert_identical_curves(expected, actual):
    assert len(expected.points) == len(actual.points)
    for theirs, ours in zip(expected.points, actual.points):
        assert theirs == ours  # exact float equality, field by field


class TestEquivalence:
    def test_sharded_sweep_matches_serial_runner(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        report = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(run_dir=str(tmp_path / "run"), shards=3),
        )
        assert_identical_curves(serial, report.result)
        assert report.completed == len(problems)
        assert report.resumed == 0
        assert report.quarantined == ()

    def test_budget_overrides_flow_through(self, problems, tmp_path):
        budgets = {problems[0].entity: 3, problems[1].entity: 15}
        serial = run_quality_experiment(problems, CONFIG, budgets=budgets)
        report = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(run_dir=str(tmp_path / "run"), shards=2),
            budgets=budgets,
        )
        assert_identical_curves(serial, report.result)

    def test_curve_streams_incrementally(self, problems, tmp_path):
        sink = io.StringIO()
        report = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(run_dir=str(tmp_path / "run"), shards=2),
            stream=CurveStream(sink),
        )
        lines = sink.getvalue().strip().splitlines()
        # Header plus one line per curve point.
        assert len(lines) == len(report.result.points) + 1
        assert lines[0].split() == [
            "point", "cost", "utility", "f1", "precision", "recall", "accuracy",
        ]


class TestRunDirectory:
    def test_journal_carries_seed_provenance(self, problems, tmp_path):
        run_dir = str(tmp_path / "run")
        run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=run_dir, shards=2)
        )
        done = [
            record
            for record in read_records(os.path.join(run_dir, JOURNAL_NAME))
            if record["type"] == "entity_done"
        ]
        assert len(done) == len(problems)
        for record in done:
            index = record["index"]
            assert record["seeds"]["worker_seed"] == CONFIG.seed * 7919 + index
            assert record["seeds"]["selector_seed"] is None  # not the random selector

    def test_checkpoint_reaches_complete(self, problems, tmp_path):
        run_dir = str(tmp_path / "run")
        run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=run_dir, shards=2)
        )
        checkpoint = read_json(os.path.join(run_dir, CHECKPOINT_NAME))
        assert checkpoint["status"] == "complete"
        assert checkpoint["completed"] == list(range(len(problems)))
        assert checkpoint["pending"] == []

    def test_populated_run_dir_refused_without_resume(self, problems, tmp_path):
        run_dir = str(tmp_path / "run")
        orch = OrchestratorConfig(run_dir=run_dir, shards=2)
        run_checkpointed_experiment(problems, CONFIG, orch)
        with pytest.raises(OrchestrationError, match="pass resume"):
            run_checkpointed_experiment(problems, CONFIG, orch)

    def test_resume_refuses_a_different_sweep(self, problems, tmp_path):
        run_dir = str(tmp_path / "run")
        run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=run_dir, shards=2)
        )
        other = ExperimentConfig(
            selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=12
        )
        with pytest.raises(OrchestrationError, match="fingerprint mismatch"):
            run_checkpointed_experiment(
                problems, other, OrchestratorConfig(run_dir=run_dir, shards=2, resume=True)
            )


class TestResume:
    def test_partial_journal_resumes_bit_identical(self, problems, tmp_path):
        undisturbed_dir = str(tmp_path / "undisturbed")
        undisturbed = run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=undisturbed_dir, shards=2)
        )

        # Rebuild a "crashed" run directory: same manifest, journal truncated
        # to the first two completed entities plus one in-flight marker —
        # exactly what a SIGKILL between checkpoints leaves behind.
        crashed_dir = str(tmp_path / "crashed")
        os.makedirs(crashed_dir)
        import shutil

        shutil.copy(
            os.path.join(undisturbed_dir, "run.json"),
            os.path.join(crashed_dir, "run.json"),
        )
        records = read_records(os.path.join(undisturbed_dir, JOURNAL_NAME))
        done = [r for r in records if r["type"] == "entity_done"][:2]
        with open(os.path.join(crashed_dir, JOURNAL_NAME), "w", encoding="utf-8") as fh:
            import json

            for record in done:
                fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
            fh.write(
                json.dumps(
                    {"type": "started", "index": 4, "entity": problems[4].entity,
                     "attempt": 1},
                    sort_keys=True, separators=(",", ":"),
                )
                + "\n"
            )
            # ...and a torn trailing line, as the crash would leave it.
            fh.write('{"type": "entity_do')

        resumed = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(run_dir=crashed_dir, shards=2, resume=True),
        )
        assert resumed.resumed == 2
        assert resumed.completed == len(problems)
        assert_identical_curves(undisturbed.result, resumed.result)

    def test_resume_of_a_complete_run_recomputes_nothing(self, problems, tmp_path):
        run_dir = str(tmp_path / "run")
        first = run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=run_dir, shards=2)
        )
        again = run_checkpointed_experiment(
            problems, CONFIG, OrchestratorConfig(run_dir=run_dir, shards=2, resume=True)
        )
        assert again.resumed == len(problems)
        assert_identical_curves(first.result, again.result)


class TestFailurePolicy:
    def test_transient_failure_is_retried_to_an_identical_curve(
        self, problems, tmp_path
    ):
        serial = run_quality_experiment(problems, CONFIG)
        # One injected failure on the first dispatched entity; the retry
        # must reproduce the exact trajectory (per-entity seed derivation).
        faults.install(FaultPlan(fail_entity_at=1, fail_entity_limit=1))
        report = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(run_dir=str(tmp_path / "run"), shards=2),
        )
        assert_identical_curves(serial, report.result)
        assert report.quarantined == ()
        failed = [
            record
            for record in read_records(
                os.path.join(str(tmp_path / "run"), JOURNAL_NAME)
            )
            if record["type"] == "entity_failed"
        ]
        assert len(failed) == 1

    def test_poison_entity_is_quarantined_without_blocking(self, problems, tmp_path):
        # With max_attempts=1 a single injected failure (first dispatch, one
        # budget unit) makes that entity poison: the sweep must finish with
        # it quarantined, not error out.
        faults.install(FaultPlan(fail_entity_at=1, fail_entity_limit=1))
        report = run_checkpointed_experiment(
            problems,
            CONFIG,
            OrchestratorConfig(
                run_dir=str(tmp_path / "run"), shards=1, max_attempts=1
            ),
        )
        assert len(report.quarantined) == 1
        entity, error = report.quarantined[0]
        assert "injected entity failure" in error
        assert report.completed == len(problems) - 1
        assert report.result.points, "the surviving entities still make a curve"

    def test_orchestrator_config_validation(self):
        with pytest.raises(OrchestrationError, match="shards"):
            OrchestratorConfig(run_dir="x", shards=0)
        with pytest.raises(OrchestrationError, match="max_attempts"):
            OrchestratorConfig(run_dir="x", max_attempts=0)
        with pytest.raises(OrchestrationError, match="run_dir"):
            OrchestratorConfig(run_dir="")
        with pytest.raises(OrchestrationError, match="retry_backoff_s"):
            OrchestratorConfig(run_dir="x", retry_backoff_s=-1.0)
