"""Chaos suite: the refinement service under injected failures.

Service-level self-healing: a merge that crashes mid-batch fails *alone* —
earlier merges in the batch stand, later ones are refunded with a retry-safe
:class:`MergeAbortedError` — and a client resending the failed-and-refunded
work converges on exactly the posterior an undisturbed run produces.  On the
scan side, a worker kill inside a shared evaluator pool is absorbed by the
supervisor without any tenant-visible error, and the recovered trajectories
equal a serial service's.
"""

import asyncio
import multiprocessing

import pytest

from repro.core.crowd import CrowdModel
from repro.core.runtime import RuntimeOptions
from repro.service import RefinementService
from repro.service.api import MergeAbortedError, ServiceError
from repro.testing import faults
from repro.testing.faults import FaultPlan

from tests.core.selection.test_persistent_pool import dense_distribution

pytestmark = pytest.mark.chaos


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


def _answer_waves(fact_ids):
    """Three disjoint two-answer waves over the session's facts."""
    return [
        {fact_ids[0]: True, fact_ids[1]: False},
        {fact_ids[2]: True, fact_ids[3]: True},
        {fact_ids[4]: False, fact_ids[5]: True},
    ]


async def _posterior_reference(prior, waves):
    """The undisturbed trajectory: the same waves, no faults."""
    async with RefinementService() as service:
        created = await service.create_session(prior, CrowdModel(0.8), budget=16)
        for wave in waves:
            await service.post_answers(created.session_id, wave)
        return await service.get_posterior(created.session_id)


def test_merge_fault_mid_batch_fails_alone_and_retry_converges():
    prior = dense_distribution(8, 96, seed=90)
    waves = _answer_waves(prior.fact_ids)

    async def scenario():
        async with RefinementService() as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=16
            )
            # All three waves land in the queue before the drainer wakes, so
            # they drain as ONE merge batch; the second merge of that batch
            # raises inside the executor hop.
            with faults.injected(FaultPlan(fail_merge_at=2)):
                results = await asyncio.gather(
                    *(
                        service.post_answers(created.session_id, wave)
                        for wave in waves
                    ),
                    return_exceptions=True,
                )

            # Wave 1 merged before the fault: it stands.
            assert not isinstance(results[0], Exception)
            assert results[0].rounds_merged == 1
            # Wave 2 crashed mid-merge: its state is indeterminate, so the
            # error is NOT retry-safe (its charge stands too).
            assert isinstance(results[1], ServiceError)
            assert type(results[1]) is ServiceError
            assert not results[1].retry_safe
            assert "merge failed" in str(results[1])
            # Wave 3 never ran: aborted, refunded, retry-safe.
            assert isinstance(results[2], MergeAbortedError)
            assert results[2].retry_safe
            assert "refunded" in str(results[2])

            metrics = service.metrics()
            assert metrics["merges"]["count"] == 1
            assert metrics["errors"] == 2

            # The injected fault never applied wave 2, so resending waves 2
            # and 3 replays the undisturbed merge order exactly.
            for wave in waves[1:]:
                report = await service.post_answers(created.session_id, wave)
            assert report.rounds_merged == 3
            view = await service.get_posterior(created.session_id)
            closed = await service.close_session(created.session_id)
            return view, closed

    view, closed = run(scenario())
    reference = run(_posterior_reference(prior, waves))

    assert view.fact_ids == reference.fact_ids
    assert len(view.support) == len(reference.support)
    for (mask, prob), (ref_mask, ref_prob) in zip(view.support, reference.support):
        assert mask == ref_mask
        assert abs(prob - ref_prob) < 1e-9
    for fact_id, marginal in reference.marginals.items():
        assert abs(view.marginals[fact_id] - marginal) < 1e-9
    assert abs(view.utility - reference.utility) < 1e-9
    # Wave 2 was charged twice (once lost to the fault, once on retry); wave
    # 3's aborted charge was refunded before its retry.
    assert closed.budget_spent == sum(len(w) for w in waves) + len(waves[1])


async def _drive_rounds(service, session_id, rounds, k):
    trajectory = []
    for round_index in range(rounds):
        reply = await service.select_next(session_id, batch=k)
        await service.post_answers(
            session_id,
            {
                fact_id: (round_index + position) % 2 == 0
                for position, fact_id in enumerate(reply.task_ids)
            },
        )
        trajectory.append((tuple(reply.task_ids), reply.objective))
    return trajectory


@pytest.mark.parallel
def test_service_scan_survives_worker_kill_with_identical_trajectory():
    prior = dense_distribution(10, 256, seed=91)
    rounds, k = 3, 2

    async def run_service(runtime):
        async with RefinementService(runtime, pools=1) as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=rounds * k
            )
            trajectory = await _drive_rounds(
                service, created.session_id, rounds, k
            )
            return trajectory, service.metrics()

    serial_trajectory, _ = run(run_service(None))

    runtime = RuntimeOptions(workers=2, parallel_threshold=0)
    with faults.injected(FaultPlan(kill_worker_at_dispatch=1)):
        recovered_trajectory, metrics = run(run_service(runtime))
    assert multiprocessing.active_children() == []

    for (ids, objective), (ref_ids, ref_objective) in zip(
        recovered_trajectory, serial_trajectory
    ):
        assert ids == ref_ids
        assert abs(objective - ref_objective) < 1e-9
    assert metrics["recovery"]["worker_crashes"] == 1
    assert metrics["recovery"]["pool_rebuilds"] == 1
    assert metrics["recovery"]["breaker_trips"] == 0
    for pool in metrics["pools"]["per_pool"]:
        assert not pool["degraded"]
