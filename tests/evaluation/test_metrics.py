"""Unit tests for evaluation metrics."""

import pytest

from repro.core.distribution import JointDistribution
from repro.evaluation.metrics import classification_scores, total_utility
from repro.exceptions import CrowdFusionError


class TestClassificationScores:
    def test_perfect_predictions(self):
        gold = {"a": True, "b": False, "c": True}
        scores = classification_scores(gold, gold)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0
        assert scores.accuracy == 1.0

    def test_counts(self):
        predicted = {"a": True, "b": True, "c": False, "d": False}
        gold = {"a": True, "b": False, "c": True, "d": False}
        scores = classification_scores(predicted, gold)
        assert scores.true_positives == 1
        assert scores.false_positives == 1
        assert scores.false_negatives == 1
        assert scores.true_negatives == 1
        assert scores.support == 4

    def test_precision_recall_f1_formula(self):
        predicted = {"a": True, "b": True, "c": False}
        gold = {"a": True, "b": False, "c": True}
        scores = classification_scores(predicted, gold)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(0.5)
        assert scores.f1 == pytest.approx(0.5)

    def test_no_predicted_positives(self):
        predicted = {"a": False, "b": False}
        gold = {"a": True, "b": False}
        scores = classification_scores(predicted, gold)
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_only_shared_facts_scored(self):
        predicted = {"a": True, "zzz": True}
        gold = {"a": True, "b": False}
        scores = classification_scores(predicted, gold)
        assert scores.support == 1

    def test_no_overlap_raises(self):
        with pytest.raises(CrowdFusionError):
            classification_scores({"a": True}, {"b": True})


class TestTotalUtility:
    def test_sums_negative_entropies(self):
        dists = [
            JointDistribution.independent({"a": 0.5}),
            JointDistribution.independent({"b": 0.5, "c": 0.5}),
        ]
        assert total_utility(dists) == pytest.approx(-3.0)

    def test_empty_collection_is_zero(self):
        assert total_utility([]) == 0.0

    def test_certain_distributions_contribute_zero(self):
        dists = [JointDistribution.independent({"a": 1.0})]
        assert total_utility(dists) == pytest.approx(0.0)
