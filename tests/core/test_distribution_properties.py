"""Property-based tests (hypothesis) for JointDistribution invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import JointDistribution


@st.composite
def distributions(draw, max_facts=4):
    """Random sparse joint distributions over up to ``max_facts`` facts."""
    n = draw(st.integers(min_value=1, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=1,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=len(support),
            max_size=len(support),
        )
    )
    return JointDistribution(fact_ids, dict(zip(support, masses)))


@st.composite
def marginal_maps(draw, max_facts=5):
    n = draw(st.integers(min_value=1, max_value=max_facts))
    values = draw(
        st.lists(
            # Degenerate 0/1 marginals stay in scope, but nonzero ones are
            # bounded away from the subnormal range: products of marginals
            # below ~1e-60 can underflow float64 entirely, and no exact-
            # arithmetic invariant survives masses the format cannot represent.
            st.one_of(
                st.sampled_from([0.0, 1.0]),
                st.floats(min_value=1e-60, max_value=1.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return {f"f{i}": value for i, value in enumerate(values)}


class TestDistributionInvariants:
    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_probabilities_sum_to_one(self, dist):
        assert sum(p for _, p in dist.items()) == pytest.approx(1.0)

    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_entropy_bounds(self, dist):
        entropy = dist.entropy()
        assert -1e-9 <= entropy <= dist.num_facts + 1e-9

    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_marginals_in_unit_interval(self, dist):
        for probability in dist.marginals().values():
            assert -1e-9 <= probability <= 1.0 + 1e-9

    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_marginalize_onto_all_facts_is_identity(self, dist):
        assert dist.marginalize(dist.fact_ids).allclose(dist)

    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_marginalizing_never_increases_entropy(self, dist):
        single = dist.marginalize(dist.fact_ids[:1])
        assert single.entropy() <= dist.entropy() + 1e-9

    @given(distributions())
    @settings(max_examples=100, deadline=None)
    def test_marginal_matches_marginalized_distribution(self, dist):
        fact_id = dist.fact_ids[0]
        direct = dist.marginal(fact_id)
        via_marginalize = dist.marginalize([fact_id]).probability((True,))
        assert direct == pytest.approx(via_marginalize, abs=1e-9)

    @given(distributions(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_uniform_reweight_is_noop(self, dist, factor):
        weights = {mask: factor for mask, _ in dist.items()}
        assert dist.reweight(weights).allclose(dist, tolerance=1e-9)


class TestIndependentConstruction:
    @given(marginal_maps())
    @settings(max_examples=100, deadline=None)
    def test_independent_recovers_marginals(self, marginals):
        dist = JointDistribution.independent(marginals)
        recovered = dist.marginals()
        for fact_id, p_true in marginals.items():
            assert recovered[fact_id] == pytest.approx(p_true, abs=1e-9)

    @given(marginal_maps())
    @settings(max_examples=100, deadline=None)
    def test_independent_entropy_is_sum_of_fact_entropies(self, marginals):
        dist = JointDistribution.independent(marginals)
        expected = 0.0
        for p in marginals.values():
            if 0.0 < p < 1.0:
                expected += -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        assert dist.entropy() == pytest.approx(expected, abs=1e-9)

    @given(marginal_maps(max_facts=4))
    @settings(max_examples=60, deadline=None)
    def test_conditioning_is_consistent_with_bayes(self, marginals):
        dist = JointDistribution.independent(marginals)
        fact_id = next(iter(marginals))
        p_true = dist.marginal(fact_id)
        if 0.0 < p_true < 1.0 and len(marginals) > 1:
            conditioned = dist.condition({fact_id: True})
            # In an independent distribution, conditioning on one fact leaves
            # the other marginals unchanged.
            for other in dist.fact_ids:
                if other != fact_id:
                    assert conditioned.marginal(other) == pytest.approx(
                        dist.marginal(other), abs=1e-9
                    )
