"""Greedy approximate task selection (Algorithm 1 of the paper).

Because the answer-set entropy ``H(T)`` is monotone and submodular in the
task set, iteratively adding the fact with the largest marginal entropy gain
achieves a ``(1 − 1/e)`` approximation of the optimum (Nemhauser et al.).
The selector stops early (``K* < k``) when no candidate yields a positive
gain, exactly as lines 5–6 of Algorithm 1 prescribe.

All greedy variants share :func:`run_engine_greedy`, one scan loop over the
vectorized incremental :class:`~repro.core.selection.engine.EntropyEngine`;
they differ only in whether the Theorem-3 pruning rule is applied.  The
historical per-candidate-from-scratch implementation survives as
:class:`~repro.core.selection.reference.ReferenceGreedySelector`.
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.utility import crowd_entropy

#: Gains smaller than this are treated as zero ("no benefit from one more task").
GAIN_TOLERANCE = 1e-9


def run_engine_greedy(
    distribution: JointDistribution,
    crowd: CrowdModel,
    k: int,
    candidates: Sequence[str],
    use_pruning: bool = False,
) -> SelectionResult:
    """One engine-backed run of Algorithm 1, optionally with Theorem-3 pruning.

    Candidates are ranked by the answer-set entropy ``H(T ∪ {f})``; the early
    stop (lines 5–6) uses the *net* gain ``ρ − H(Crowd)``, i.e. the expected
    utility improvement ``ΔQ`` of adding one more task.  A noisy crowd adds
    exactly ``H(Crowd)`` of answer entropy even for a fact that is already
    certain, so subtracting it is what makes "no benefit from asking one more
    task" detect certainty (Theorem 2: the net gain is positive exactly while
    an uncertain fact remains).
    """
    stats = SelectionStats()
    engine = EntropyEngine(distribution, crowd)
    state = engine.initial_state()
    remaining = list(candidates)
    pruned: Set[str] = set()
    noise_entropy = crowd_entropy(crowd.accuracy)

    for _iteration in range(k):
        stats.iterations += 1
        slack_bits = float(k - state.width - 1)
        best_id = None
        best_entropy = float("-inf")
        newly_pruned: Set[str] = set()

        for fact_id in remaining:
            if use_pruning and fact_id in pruned:
                stats.pruned_candidates += 1
                continue
            stats.candidate_evaluations += 1
            if state.width:
                # Every evaluation past the first iteration reuses the cached
                # partition and channel table instead of a from-scratch pass.
                stats.cache_hits += 1
            entropy = engine.extension_entropy(state, fact_id)
            if entropy > best_entropy + TIE_TOLERANCE:
                best_entropy = entropy
                best_id = fact_id
            # Theorem 3: if even adding the remaining slack cannot reach the
            # current best, this fact can never be part of a better greedy
            # trajectory — drop it for all future iterations too.
            if use_pruning and entropy + slack_bits < best_entropy:
                newly_pruned.add(fact_id)

        pruned.update(newly_pruned)
        stats.pruned_facts = len(pruned)
        if best_id is None:
            break
        gain = best_entropy - state.entropy - noise_entropy
        if gain <= GAIN_TOLERANCE:
            # No candidate improves the expected utility: stop with K* < k.
            break
        state = engine.extend(state, best_id)
        remaining.remove(best_id)
        if not remaining:
            break

    return SelectionResult(
        task_ids=state.task_ids, objective=state.entropy, stats=stats
    )


class GreedySelector(TaskSelector):
    """Algorithm 1: iterative greedy selection maximising ``H(T)``."""

    name = "greedy"

    def _select(
        self,
        distribution: JointDistribution,
        crowd: CrowdModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        return run_engine_greedy(distribution, crowd, k, candidates, use_pruning=False)
