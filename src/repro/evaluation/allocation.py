"""Budget allocation across entities (the paper's suggested extension).

The error analysis (Section V-D) notes that books with many statements are
judged worse because the fixed per-book budget is spread too thin, and that
"if a proper strategy can be designed to distribute budgets among all subsets
of facts, this can be solved".  This module implements that strategy space:
given a *global* task budget and the per-entity prior distributions, allocate
more tasks to the entities where the crowd can reduce more uncertainty.

Three allocators are provided:

* ``uniform`` — the paper's original setting (equal budget per entity);
* ``proportional`` — budget proportional to the number of facts;
* ``entropy`` — budget proportional to the prior entropy (uncertainty) of
  each entity, which is the natural information-theoretic refinement.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.evaluation.experiment import EntityProblem
from repro.exceptions import BudgetError

#: Names accepted by :func:`allocate_budget`.
STRATEGIES = ("uniform", "proportional", "entropy")


def _largest_remainder(weights: List[float], total: int) -> List[int]:
    """Apportion ``total`` integer units proportionally to ``weights``.

    Uses the largest-remainder (Hamilton) method so the result always sums to
    ``total`` exactly.
    """
    weight_sum = sum(weights)
    if weight_sum <= 0:
        # Degenerate case: nothing is uncertain; spread evenly.
        weights = [1.0] * len(weights)
        weight_sum = float(len(weights))
    raw = [total * weight / weight_sum for weight in weights]
    floors = [int(value) for value in raw]
    shortfall = total - sum(floors)
    remainders = sorted(
        range(len(raw)), key=lambda index: raw[index] - floors[index], reverse=True
    )
    for index in remainders[:shortfall]:
        floors[index] += 1
    return floors


def allocate_budget(
    problems: Sequence[EntityProblem],
    total_budget: int,
    strategy: str = "entropy",
    min_per_entity: int = 0,
) -> Dict[str, int]:
    """Distribute a global task budget over the entity problems.

    Parameters
    ----------
    problems:
        The per-entity refinement problems (entity id, facts, prior, gold).
    total_budget:
        Total number of crowd tasks available across all entities.
    strategy:
        ``"uniform"``, ``"proportional"`` (to fact count) or ``"entropy"``
        (to prior entropy).
    min_per_entity:
        A floor given to every entity before the strategy distributes the
        remainder; guards against starving small-but-uncertain entities.
    """
    if not problems:
        raise BudgetError("cannot allocate a budget over zero entities")
    if total_budget <= 0:
        raise BudgetError(f"total_budget must be positive, got {total_budget}")
    if strategy not in STRATEGIES:
        raise BudgetError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if min_per_entity < 0:
        raise BudgetError(f"min_per_entity must be non-negative, got {min_per_entity}")
    floor_total = min_per_entity * len(problems)
    if floor_total > total_budget:
        raise BudgetError(
            f"min_per_entity={min_per_entity} over {len(problems)} entities exceeds "
            f"the total budget of {total_budget}"
        )

    remainder = total_budget - floor_total
    if strategy == "uniform":
        weights = [1.0 for _ in problems]
    elif strategy == "proportional":
        weights = [float(len(problem.facts)) for problem in problems]
    else:  # entropy
        weights = [problem.prior.entropy() for problem in problems]

    shares = _largest_remainder(weights, remainder)
    return {
        problem.entity: min_per_entity + share
        for problem, share in zip(problems, shares)
    }


def allocation_summary(allocations: Dict[str, int]) -> Dict[str, float]:
    """Summary statistics of an allocation (min / max / mean / total)."""
    if not allocations:
        raise BudgetError("empty allocation")
    values = list(allocations.values())
    return {
        "total": float(sum(values)),
        "min": float(min(values)),
        "max": float(max(values)),
        "mean": sum(values) / len(values),
    }
