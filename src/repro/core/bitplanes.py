"""Packed uint64 bit planes: the wide-fact support representation.

Distributions of up to 63 facts keep their support masks in one ``int64``
column and every engine kernel is a handful of vectorized integer ops.  Past
63 facts a mask no longer fits a machine word; the historical fallback was an
object-dtype array of Python ints, which keeps every consumer *correct* but
turns each shift/AND into a per-row Python call — hundreds-of-facts corpora
paid four orders of magnitude over the packed path.

This module packs wide masks into ``(rows, ceil(num_facts / 64))`` arrays of
``uint64`` words instead: bit ``j`` of word ``w`` of a row is bit
``64 * w + j`` of the row's assignment mask (little-endian words, matching
``int.from_bytes(..., "little")``).  Every hot-path consumer —
:func:`repro.core.entropy.project_columns`, the engine's bit-column cache,
Bayesian merging — extracts single-fact columns or small projections from
the planes with the same vectorized shift/AND idiom the ``int64`` path uses,
so 100–500-fact corpora stay on contiguous numeric arrays end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: All 64 bits of one plane word.
_WORD_MASK = (1 << 64) - 1


def plane_count(num_facts: int) -> int:
    """Number of uint64 words needed to hold ``num_facts`` bits per row."""
    return (num_facts + 63) >> 6


def pack_masks(masks, num_facts: int) -> np.ndarray:
    """Pack integer assignment masks into ``(rows, plane_count)`` uint64 planes.

    ``masks`` may be an ``int64`` array (63-fact fast path), an object-dtype
    array of Python ints (the legacy wide representation), or any sequence of
    non-negative ints.  Word ``w`` of a row holds mask bits
    ``[64w, 64w + 63]``.
    """
    if num_facts < 1:
        raise ValueError(f"num_facts must be positive, got {num_facts}")
    words = plane_count(num_facts)
    if isinstance(masks, np.ndarray) and masks.dtype != object:
        rows = masks.shape[0]
        planes = np.zeros((rows, words), dtype=np.uint64)
        # int64 masks are non-negative by construction (<= 63 usable bits),
        # so the unsigned view is value-preserving.
        planes[:, 0] = masks.astype(np.uint64)
        return planes
    values = [int(mask) for mask in masks]
    planes = np.empty((len(values), words), dtype=np.uint64)
    for word in range(words):
        shift = word << 6
        planes[:, word] = np.fromiter(
            ((value >> shift) & _WORD_MASK for value in values),
            dtype=np.uint64,
            count=len(values),
        )
    return planes


def unpack_planes(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_masks`: planes back to an object array of ints.

    Row order is preserved; the result carries arbitrary-precision Python
    ints, so it round-trips any fact width.
    """
    contiguous = np.ascontiguousarray(planes, dtype=np.uint64)
    rows, words = contiguous.shape
    row_bytes = contiguous.tobytes()
    stride = words * 8
    masks = np.empty(rows, dtype=object)
    for index in range(rows):
        masks[index] = int.from_bytes(
            row_bytes[index * stride : (index + 1) * stride], "little"
        )
    return masks


def plane_bit_column(planes: np.ndarray, position: int) -> np.ndarray:
    """0/1 ``int8`` column of bit ``position`` over all rows of the planes."""
    word = position >> 6
    shift = np.uint64(position & 63)
    return ((planes[:, word] >> shift) & np.uint64(1)).astype(np.int8)


def project_planes(planes: np.ndarray, positions: "Sequence[int]") -> np.ndarray:
    """Packed-plane counterpart of :func:`repro.core.entropy.project_columns`.

    Bit ``i`` of each result is bit ``positions[i]`` of the corresponding
    row; projections are task-set sized (<= 24 bits) and returned as
    ``int64``.
    """
    projected = np.zeros(planes.shape[0], dtype=np.int64)
    for index, position in enumerate(positions):
        word = position >> 6
        shift = np.uint64(position & 63)
        column = ((planes[:, word] >> shift) & np.uint64(1)).astype(np.int64)
        projected |= column << index
    return projected
