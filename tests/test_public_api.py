"""Sanity checks on the package's public API surface."""

import repro
from repro import core, correlation, crowdsim, datasets, evaluation, fusion


class TestTopLevelExports:
    def test_version_string(self):
        assert repro.__version__ == "1.3.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_exported(self):
        assert repro.CrowdModel(0.8).accuracy == 0.8
        assert callable(repro.merge_answers)
        assert callable(repro.get_selector)
        assert "greedy" in repro.available_selectors()


class TestSubpackageExports:
    def test_core_all_resolves(self):
        for name in core.__all__:
            assert hasattr(core, name), name

    def test_fusion_all_resolves(self):
        for name in fusion.__all__:
            assert hasattr(fusion, name), name

    def test_crowdsim_all_resolves(self):
        for name in crowdsim.__all__:
            assert hasattr(crowdsim, name), name

    def test_datasets_all_resolves(self):
        for name in datasets.__all__:
            assert hasattr(datasets, name), name

    def test_correlation_all_resolves(self):
        for name in correlation.__all__:
            assert hasattr(correlation, name), name

    def test_evaluation_all_resolves(self):
        for name in evaluation.__all__:
            assert hasattr(evaluation, name), name

    def test_selector_registry_matches_paper_labels(self):
        from repro.core.selection.registry import _ALIASES

        assert set(_ALIASES) == {
            "OPT",
            "Approx.",
            "Approx.&Prune",
            "Approx.&Pre.",
            "Approx.&Prune&Pre.",
            "Random",
        }
