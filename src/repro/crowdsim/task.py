"""Task records published to the (simulated) crowdsourcing platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

from repro.exceptions import PlatformError


@dataclass(frozen=True)
class Task:
    """One true/false micro-task: "is this fact correct?".

    Parameters
    ----------
    fact_id:
        Identifier of the fact being judged.
    question:
        The human-readable question shown to workers.
    difficulty:
        Extra probability of error caused by the statement itself (wrong
        author order, misspelling, extra information — Section V-D).  A
        difficulty of ``d`` reduces the effective worker accuracy to
        ``max(0.5, Pc − d)``.
    ground_truth:
        The gold label, known to the simulator but never shown to workers.
    """

    fact_id: str
    question: str
    difficulty: float = 0.0
    ground_truth: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.fact_id:
            raise PlatformError("a task must reference a non-empty fact id")
        if not 0.0 <= self.difficulty <= 0.5:
            raise PlatformError(
                f"task difficulty must be in [0, 0.5], got {self.difficulty}"
            )


@dataclass(frozen=True)
class TaskBatch:
    """A batch of tasks published together in one CrowdFusion round."""

    batch_id: int
    tasks: Tuple[Task, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise PlatformError("a task batch cannot be empty")
        fact_ids = [task.fact_id for task in self.tasks]
        if len(set(fact_ids)) != len(fact_ids):
            raise PlatformError("a task batch cannot ask the same fact twice")

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """Fact ids asked in this batch, in publication order."""
        return tuple(task.fact_id for task in self.tasks)

    @classmethod
    def from_fact_ids(
        cls,
        batch_id: int,
        fact_ids: Sequence[str],
        questions: Optional[Sequence[str]] = None,
    ) -> "TaskBatch":
        """Build a batch of bare tasks from fact ids (questions default to the id)."""
        if questions is not None and len(questions) != len(fact_ids):
            raise PlatformError("questions must align one-to-one with fact ids")
        tasks = tuple(
            Task(
                fact_id=fact_id,
                question=questions[i] if questions is not None else f"Is {fact_id} true?",
            )
            for i, fact_id in enumerate(fact_ids)
        )
        return cls(batch_id=batch_id, tasks=tasks)
