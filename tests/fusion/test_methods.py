"""Unit tests for the fusion algorithms: majority, CRH, TruthFinder, Bayesian."""

import pytest

from repro.exceptions import FusionError
from repro.fusion.accu import BayesianVote
from repro.fusion.claims import ClaimDatabase
from repro.fusion.crh import ModifiedCRH
from repro.fusion.majority import MajorityVote
from repro.fusion.truthfinder import TruthFinder


def skewed_database():
    """Two data items; one good source, one bad source, several average ones.

    Sources s1–s3 report the true value for both items; s4 and s5 report the
    same wrong value for item2 (copying error) and disagree on item1.
    """
    observations = [
        ("s1", "e1", "a", "true-value-1"),
        ("s2", "e1", "a", "true-value-1"),
        ("s3", "e1", "a", "true-value-1"),
        ("s4", "e1", "a", "wrong-value-1a"),
        ("s5", "e1", "a", "wrong-value-1b"),
        ("s1", "e2", "a", "true-value-2"),
        ("s2", "e2", "a", "true-value-2"),
        ("s3", "e2", "a", "true-value-2"),
        ("s4", "e2", "a", "wrong-value-2"),
        ("s5", "e2", "a", "wrong-value-2"),
    ]
    return ClaimDatabase.from_observations(observations)


ALL_METHODS = [MajorityVote(), ModifiedCRH(), TruthFinder(), BayesianVote()]


class TestCommonBehaviour:
    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_scores_every_claim(self, method):
        database = skewed_database()
        result = method.run(database)
        assert set(result.confidences) == {claim.claim_id for claim in database.claims()}

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_confidences_within_unit_interval(self, method):
        result = method.run(skewed_database())
        for value in result.confidences.values():
            assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_majority_supported_claims_score_higher(self, method):
        database = skewed_database()
        result = method.run(database)
        claims = {claim.value: claim.claim_id for claim in database.claims()}
        assert (
            result.confidence(claims["true-value-1"])
            > result.confidence(claims["wrong-value-1a"])
        )
        assert (
            result.confidence(claims["true-value-2"])
            > result.confidence(claims["wrong-value-2"])
        )

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_empty_database_rejected(self, method):
        with pytest.raises(FusionError):
            method.run(ClaimDatabase())

    @pytest.mark.parametrize("method", ALL_METHODS, ids=lambda m: m.name)
    def test_source_weights_cover_all_sources(self, method):
        database = skewed_database()
        result = method.run(database)
        assert set(result.source_weights) == {
            source.source_id for source in database.sources()
        }


class TestMajorityVote:
    def test_confidence_is_support_fraction(self):
        database = skewed_database()
        result = MajorityVote().run(database)
        claims = {claim.value: claim.claim_id for claim in database.claims()}
        assert result.confidence(claims["true-value-1"]) == pytest.approx(3 / 5)
        assert result.confidence(claims["wrong-value-2"]) == pytest.approx(2 / 5)

    def test_per_item_confidences_sum_to_one(self):
        database = skewed_database()
        result = MajorityVote().run(database)
        for entity in database.entities():
            total = sum(
                result.confidence(claim.claim_id) for claim in database.claims_for(entity)
            )
            assert total == pytest.approx(1.0)


class TestModifiedCRH:
    def test_reliable_sources_get_higher_weight(self):
        result = ModifiedCRH().run(skewed_database())
        assert result.source_weights["s1"] > result.source_weights["s5"]

    def test_iterations_recorded(self):
        result = ModifiedCRH().run(skewed_database())
        assert result.iterations >= 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FusionError):
            ModifiedCRH(top_fraction=0.0)
        with pytest.raises(FusionError):
            ModifiedCRH(max_iterations=0)
        with pytest.raises(FusionError):
            ModifiedCRH(smoothing=0.9)

    def test_top_fraction_one_marks_everything_true(self):
        database = skewed_database()
        result = ModifiedCRH(top_fraction=1.0).run(database)
        labels = result.labels()
        assert all(labels.values())


class TestTruthFinder:
    def test_trust_converges_between_zero_and_one(self):
        result = TruthFinder().run(skewed_database())
        for trust in result.source_weights.values():
            assert 0.0 < trust < 1.0

    def test_good_source_more_trusted_than_bad(self):
        result = TruthFinder().run(skewed_database())
        assert result.source_weights["s1"] > result.source_weights["s4"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FusionError):
            TruthFinder(initial_trust=1.0)
        with pytest.raises(FusionError):
            TruthFinder(dampening=0.0)
        with pytest.raises(FusionError):
            TruthFinder(max_iterations=0)

    def test_more_supporters_raise_confidence(self):
        database = skewed_database()
        result = TruthFinder().run(database)
        claims = {claim.value: claim.claim_id for claim in database.claims()}
        assert (
            result.confidence(claims["true-value-1"])
            > result.confidence(claims["wrong-value-1a"])
        )


class TestBayesianVote:
    def test_posteriors_per_item_do_not_exceed_one(self):
        database = skewed_database()
        result = BayesianVote().run(database)
        for entity in database.entities():
            total = sum(
                result.confidence(claim.claim_id) for claim in database.claims_for(entity)
            )
            assert total <= 1.0 + 1e-9

    def test_unanimous_claim_not_fully_certain(self):
        database = ClaimDatabase.from_observations(
            [("s1", "e", "a", "v"), ("s2", "e", "a", "v"), ("s3", "e", "a", "v")]
        )
        result = BayesianVote().run(database)
        confidence = result.confidence("c1")
        assert 0.5 < confidence < 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FusionError):
            BayesianVote(initial_accuracy=0.0)
        with pytest.raises(FusionError):
            BayesianVote(false_values=0)
        with pytest.raises(FusionError):
            BayesianVote(max_iterations=0)

    def test_source_accuracy_learned(self):
        result = BayesianVote().run(skewed_database())
        assert result.source_weights["s1"] > result.source_weights["s4"]
