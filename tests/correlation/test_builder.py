"""Unit tests for the JointDistributionBuilder."""

import pytest

from repro.correlation.builder import JointDistributionBuilder
from repro.correlation.rules import (
    ImplicationRule,
    MutualExclusionRule,
    PositiveCorrelationRule,
)
from repro.exceptions import InvalidDistributionError


class TestBuilderValidation:
    def test_requires_marginals(self):
        with pytest.raises(InvalidDistributionError):
            JointDistributionBuilder({})

    def test_rule_referencing_unknown_fact_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistributionBuilder({"a": 0.5}, [MutualExclusionRule(["a", "b"])])

    def test_invalid_max_support_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistributionBuilder({"a": 0.5}, max_support=0)

    def test_hard_rules_that_eliminate_everything_rejected(self):
        builder = JointDistributionBuilder(
            {"a": 1.0, "b": 1.0}, [MutualExclusionRule(["a", "b"], strength=1.0)]
        )
        with pytest.raises(InvalidDistributionError):
            builder.build()


class TestIndependentBuild:
    def test_no_rules_gives_independent_product(self):
        marginals = {"a": 0.3, "b": 0.7, "c": 0.5}
        built = JointDistributionBuilder(marginals).build()
        recovered = built.marginals()
        for fact_id, value in marginals.items():
            assert recovered[fact_id] == pytest.approx(value)

    def test_fact_order_matches_marginal_order(self):
        built = JointDistributionBuilder({"z": 0.5, "a": 0.5}).build()
        assert built.fact_ids == ("z", "a")


class TestRuleEffects:
    def test_mutual_exclusion_suppresses_joint_truth(self):
        marginals = {"a": 0.6, "b": 0.6}
        independent = JointDistributionBuilder(marginals).build()
        constrained = JointDistributionBuilder(
            marginals, [MutualExclusionRule(["a", "b"], strength=0.9)]
        ).build()
        assert constrained.probability((True, True)) < independent.probability((True, True))

    def test_hard_mutual_exclusion_removes_joint_truth(self):
        built = JointDistributionBuilder(
            {"a": 0.6, "b": 0.6}, [MutualExclusionRule(["a", "b"], strength=1.0)]
        ).build()
        assert built.probability((True, True)) == 0.0

    def test_implication_shifts_mass_towards_consequent(self):
        marginals = {"a": 0.5, "b": 0.5}
        built = JointDistributionBuilder(
            marginals, [ImplicationRule("a", "b", strength=0.9)]
        ).build()
        # P(b | a) should exceed P(b | not a) after applying the rule.
        p_b_given_a = built.condition({"a": True}).marginal("b")
        p_b_given_not_a = built.condition({"a": False}).marginal("b")
        assert p_b_given_a > p_b_given_not_a

    def test_positive_correlation_couples_facts(self):
        marginals = {"a": 0.5, "b": 0.5}
        built = JointDistributionBuilder(
            marginals, [PositiveCorrelationRule(["a", "b"], strength=0.8)]
        ).build()
        agree = built.probability((True, True)) + built.probability((False, False))
        assert agree > 0.5

    def test_rules_across_components_still_normalise(self):
        marginals = {"a": 0.4, "b": 0.6, "c": 0.5, "d": 0.7}
        built = JointDistributionBuilder(
            marginals,
            [
                MutualExclusionRule(["a", "b"], strength=0.7),
                ImplicationRule("c", "d", strength=0.5),
            ],
        ).build()
        assert sum(p for _, p in built.items()) == pytest.approx(1.0)
        assert built.fact_ids == ("a", "b", "c", "d")

    def test_independent_facts_unaffected_by_rules_elsewhere(self):
        marginals = {"a": 0.5, "b": 0.5, "c": 0.25}
        built = JointDistributionBuilder(
            marginals, [MutualExclusionRule(["a", "b"], strength=1.0)]
        ).build()
        assert built.marginal("c") == pytest.approx(0.25)


class TestSupportPruning:
    def test_max_support_caps_support_size(self):
        marginals = {f"f{i}": 0.5 for i in range(12)}
        built = JointDistributionBuilder(marginals, max_support=128).build()
        assert built.support_size <= 128
        assert sum(p for _, p in built.items()) == pytest.approx(1.0)

    def test_none_disables_pruning(self):
        marginals = {f"f{i}": 0.5 for i in range(8)}
        built = JointDistributionBuilder(marginals, max_support=None).build()
        assert built.support_size == 256

    def test_pruning_keeps_most_probable_assignments(self):
        marginals = {"a": 0.9, "b": 0.9, "c": 0.9}
        built = JointDistributionBuilder(marginals, max_support=2).build()
        best = built.map_assignment()
        assert best.to_bools() == (True, True, True)

    def test_oversized_component_rejected(self):
        marginals = {f"f{i}": 0.5 for i in range(25)}
        rules = [PositiveCorrelationRule([f"f{i}" for i in range(25)], strength=0.5)]
        with pytest.raises(InvalidDistributionError):
            JointDistributionBuilder(marginals, rules).build()
