"""The noisy-crowd answer model (Section II-B), generalised to heterogeneous channels.

The paper's Definition 2 characterises the crowd by a single accuracy
``Pc ∈ [0.5, 1]``: every task ("is fact *f* true?") is answered correctly
with probability ``Pc``, independently of all other tasks.  Its own
motivation, however, already describes a richer platform: workers "reliable
only in some domains" and hard statements whose per-claim difficulty lowers
the effective accuracy.  This module therefore models the crowd as a set of
**independent per-task 2×2 channels** — one ``(acc_i, 1 − acc_i)`` pair per
selected fact — with the shared-``Pc`` crowd as the uniform special case.

Class hierarchy
---------------

* :class:`ChannelModel` — abstract base; owns all Equation-2 machinery
  (answer distributions, answer-set entropies, joint fact/answer entropies)
  expressed over per-task accuracies.
* :class:`CrowdModel` — the paper's uniform BSC crowd (one shared ``Pc``).
* :class:`PerFactChannelModel` — a default accuracy plus per-fact overrides;
  the concrete representation every heterogeneous model reduces to.
* :class:`DifficultyAdjustedCrowdModel` — per-fact difficulty ``d_f`` lowers
  the effective accuracy to ``max(0.5, Pc − d_f)``, mirroring the simulated
  workers' behaviour (Section V-D hard statements).
* :class:`CalibratedCrowdModel` — per-fact accuracies estimated from
  qualification pre-tests (:mod:`repro.crowdsim.qualification`), e.g. one
  estimate per task domain.

Because each task is an independent binary channel, the answer distribution
is the projected output distribution convolved with one two-point noise
kernel per task — ``O(k · 2^k)`` instead of the ``O(4^k)`` cost of scoring
every (answer, projection) pair — and heterogeneous kernels cost exactly the
same as uniform ones (:func:`repro.core.entropy.channel_transform`).  The
historical pure-Python evaluation survives in
:mod:`repro.core.selection.reference` for equivalence testing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.core.distribution import JointDistribution
from repro.core.entropy import (
    bsc_transform,
    bsc_transform_rows,
    channel_transform,
    channel_transform_rows,
    entropy_bits,
    project_columns,
)
from repro.exceptions import InvalidCrowdModelError, SelectionError
from repro.types import validate_accuracy

#: Refuse to materialise answer distributions over more than 2^24 vectors.
_MAX_TASK_BITS = 24

#: Cap on dense (interest cells × answer vectors) tables — 2^26 float64
#: entries is 512 MB, past which the request is almost certainly a mistake.
_MAX_JOINT_ENTRIES = 1 << 26


def _validated_positions(
    distribution: JointDistribution, task_ids: Sequence[str]
) -> "tuple[int, ...]":
    if not task_ids:
        raise SelectionError("task set must contain at least one fact")
    if len(set(task_ids)) != len(task_ids):
        raise SelectionError("task set contains duplicate fact ids")
    if len(task_ids) > _MAX_TASK_BITS:
        raise SelectionError(
            f"refusing to enumerate 2^{len(task_ids)} answer vectors "
            f"(task sets are limited to {_MAX_TASK_BITS} facts)"
        )
    return distribution.positions(task_ids)


class ChannelModel(abc.ABC):
    """Crowd answer model: one independent 2×2 noise channel per task.

    Subclasses only define *which* accuracy applies to each fact
    (:meth:`accuracy_for`); all Equation-2 quantities — answer-set
    distributions, their entropies, and the joint fact/answer entropies that
    query-based selection needs — are computed here, through the vectorized
    channel kernels.  A model whose channels all share one accuracy reports
    it via :attr:`uniform_accuracy`, which lets consumers (the selection
    engine, Bayesian merging) take the bit-for-bit-identical uniform BSC
    fast path.
    """

    # -- channel description ---------------------------------------------------------

    @abc.abstractmethod
    def accuracy_for(self, fact_id: str) -> float:
        """Worker-correctness probability of the task asking about ``fact_id``."""

    @property
    def uniform_accuracy(self) -> Optional[float]:
        """The shared ``Pc`` when every task uses the same channel, else ``None``."""
        return None

    def error_for(self, fact_id: str) -> float:
        """Probability that the answer about ``fact_id`` is wrong."""
        return 1.0 - self.accuracy_for(fact_id)

    def accuracies(self, fact_ids: Sequence[str]) -> np.ndarray:
        """Per-task accuracy array aligned with ``fact_ids``."""
        return np.array(
            [self.accuracy_for(fact_id) for fact_id in fact_ids], dtype=np.float64
        )

    def _transform(self, grouped: np.ndarray, task_ids: Sequence[str]) -> np.ndarray:
        """Push a projected mass vector through the task set's channels."""
        uniform = self.uniform_accuracy
        if uniform is not None:
            return bsc_transform(grouped, len(task_ids), uniform)
        return channel_transform(grouped, self.accuracies(task_ids))

    def _transform_rows(self, grouped: np.ndarray, task_ids: Sequence[str]) -> np.ndarray:
        """Row-wise variant of :meth:`_transform` for partitioned supports."""
        uniform = self.uniform_accuracy
        if uniform is not None:
            return bsc_transform_rows(grouped, len(task_ids), uniform)
        return channel_transform_rows(grouped, self.accuracies(task_ids))

    # -- answer-set distributions (Equation 2) ---------------------------------------

    def answer_masses(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> np.ndarray:
        """Dense answer-vector mass array for ``task_ids`` (Equation 2).

        Entry ``a`` is ``P(a) = Σ_o P(o) · Π_i (acc_i if a_i = o_i else 1 − acc_i)``,
        computed by projecting the support onto the task positions and pushing
        the projected distribution through ``k`` independent binary channels.
        """
        positions = _validated_positions(distribution, task_ids)
        k = len(positions)
        masks, probabilities = distribution.support_arrays()
        projected = project_columns(masks, positions)
        grouped = np.bincount(projected, weights=probabilities, minlength=1 << k)
        return self._transform(grouped, task_ids)

    def answer_distribution(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> JointDistribution:
        """Distribution over crowd answer sets for the tasks ``task_ids``.

        The result is returned as a :class:`JointDistribution` whose "facts"
        are the selected task ids and whose assignments are answer vectors.
        """
        masses = self.answer_masses(distribution, task_ids)
        kept = np.nonzero(masses)[0]
        answer_probs = dict(zip(kept.tolist(), masses[kept].tolist()))
        return JointDistribution(task_ids, answer_probs, normalise=True)

    def task_entropy(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> float:
        """Entropy ``H(T)`` of the answer-set distribution for ``task_ids``.

        This is the objective of the task-selection problem (Equation 4).
        """
        return entropy_bits(self.answer_masses(distribution, task_ids))

    def full_answer_joint(self, distribution: JointDistribution) -> JointDistribution:
        """Answer joint distribution over *all* facts (the paper's preprocessing).

        This is Table IV of the running example: the distribution of the
        crowd's answers if every fact were asked.  Marginalising it over any
        task set yields that task set's answer distribution, which is what
        Algorithm 2 exploits.
        """
        return self.answer_distribution(distribution, distribution.fact_ids)

    # -- joint fact/answer distributions (needed by query-based selection) ----------

    def joint_fact_answer_entropy(
        self,
        distribution: JointDistribution,
        interest_ids: Sequence[str],
        task_ids: Sequence[str],
    ) -> float:
        """Joint entropy ``H(I, T)`` of facts-of-interest values and crowd answers.

        Used by query-based CrowdFusion (Section IV), where the utility after
        asking is ``Q(I | T) = H(T) − H(I, T)``.  If ``task_ids`` is empty the
        result is simply ``H(I)``.
        """
        interest_positions = distribution.positions(interest_ids)
        if not task_ids:
            return distribution.marginalize(interest_ids).entropy()
        task_positions = _validated_positions(distribution, task_ids)
        k = len(task_positions)

        masks, probabilities = distribution.support_arrays()
        interest_sub = project_columns(masks, interest_positions)
        task_sub = project_columns(masks, task_positions)
        # Re-index interest projections densely: only cells present in the
        # support carry mass, so the grouped matrix stays |cells| × 2^k even
        # for large interest sets.
        cells, cell_index = np.unique(interest_sub, return_inverse=True)
        if (cells.size << k) > _MAX_JOINT_ENTRIES:
            raise SelectionError(
                f"joint fact/answer table would need {cells.size} cells x 2^{k} "
                f"answer vectors (> {_MAX_JOINT_ENTRIES} entries); "
                "reduce the task set or the interest set"
            )
        grouped = np.bincount(
            (cell_index << k) | task_sub,
            weights=probabilities,
            minlength=cells.size << k,
        ).reshape(cells.size, 1 << k)
        joint = self._transform_rows(grouped, task_ids)
        return entropy_bits(joint.reshape(-1))


@dataclass(frozen=True)
class CrowdModel(ChannelModel):
    """The paper's uniform crowd: one shared worker accuracy ``Pc``.

    Parameters
    ----------
    accuracy:
        Probability that a worker's answer to any single task is correct.
        Must lie in ``[0.5, 1.0]`` (Definition 2).
    """

    accuracy: float

    def __post_init__(self) -> None:
        validate_accuracy(self.accuracy, "crowd accuracy")

    @property
    def error_rate(self) -> float:
        """Probability that a single answer is wrong (``1 − Pc``)."""
        return 1.0 - self.accuracy

    @property
    def uniform_accuracy(self) -> float:
        return self.accuracy

    def accuracy_for(self, fact_id: str) -> float:
        return self.accuracy

    def answer_likelihood(self, num_same: int, num_diff: int) -> float:
        """Likelihood ``P(Ans | o) = Pc^#Same · (1 − Pc)^#Diff`` of an answer set.

        ``num_same`` and ``num_diff`` count the selected facts whose crowd
        judgment agrees / disagrees with the candidate output ``o``.
        """
        if num_same < 0 or num_diff < 0:
            raise InvalidCrowdModelError("agreement counts must be non-negative")
        return (self.accuracy ** num_same) * (self.error_rate ** num_diff)


class PerFactChannelModel(ChannelModel):
    """A default accuracy plus explicit per-fact channel overrides.

    This is the concrete representation every heterogeneous crowd model
    reduces to: facts without an override use ``default_accuracy``, facts
    with one use their own channel.  When the overrides are empty (or all
    equal to the default) the model reports a :attr:`uniform_accuracy` so
    consumers fall back to the uniform BSC fast path and remain numerically
    identical to :class:`CrowdModel`.
    """

    def __init__(
        self,
        default_accuracy: float,
        fact_accuracies: Optional[Mapping[str, float]] = None,
    ):
        self._default = validate_accuracy(default_accuracy, "default crowd accuracy")
        self._overrides: Dict[str, float] = {
            fact_id: validate_accuracy(value, f"channel accuracy for {fact_id!r}")
            for fact_id, value in (fact_accuracies or {}).items()
        }
        self._uniform: Optional[float] = (
            self._default
            if all(value == self._default for value in self._overrides.values())
            else None
        )

    @property
    def default_accuracy(self) -> float:
        """Accuracy of every fact without an explicit override."""
        return self._default

    @property
    def fact_accuracies(self) -> Dict[str, float]:
        """A copy of the per-fact channel overrides."""
        return dict(self._overrides)

    @property
    def uniform_accuracy(self) -> Optional[float]:
        return self._uniform

    def accuracy_for(self, fact_id: str) -> float:
        return self._overrides.get(fact_id, self._default)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(default={self._default}, "
            f"overrides={len(self._overrides)})"
        )


class DifficultyAdjustedCrowdModel(PerFactChannelModel):
    """Per-fact difficulty lowers the effective channel accuracy.

    Mirrors the simulated workers' behaviour
    (:meth:`repro.crowdsim.worker.Worker.effective_accuracy`): a task about a
    fact with difficulty ``d ∈ [0, 0.5]`` is answered correctly with
    probability ``max(0.5, Pc − d)``.  Exposing the platform's difficulty
    knowledge to selection and merging is what lets the system avoid wasting
    budget on tasks whose answers will be near-random.
    """

    def __init__(self, base_accuracy: float, difficulties: Mapping[str, float]):
        base = validate_accuracy(base_accuracy, "crowd accuracy")
        overrides: Dict[str, float] = {}
        for fact_id, difficulty in difficulties.items():
            if not 0.0 <= difficulty <= 0.5:
                raise InvalidCrowdModelError(
                    f"difficulty for {fact_id!r} must be in [0, 0.5], got {difficulty}"
                )
            if difficulty > 0.0:
                overrides[fact_id] = max(0.5, base - difficulty)
        super().__init__(base, overrides)
        self._difficulties = dict(difficulties)

    @property
    def difficulties(self) -> Dict[str, float]:
        """A copy of the per-fact difficulties this model was built from."""
        return dict(self._difficulties)


class RecalibratedChannelModel(ChannelModel):
    """A base channel model overlaid with online re-estimated accuracies.

    Adaptive re-calibration (see
    :class:`~repro.core.selection.session.RefinementSession`) watches how
    often the crowd's answers agree with the Bayesian posterior as rounds
    accumulate, and replaces the per-fact accuracies of the facts it has
    evidence about.  Facts never asked keep the base model's channel, so the
    overlay composes with any fidelity (uniform, difficulty-adjusted,
    pre-test calibrated).
    """

    def __init__(self, base: ChannelModel, fact_accuracies: Mapping[str, float]):
        self._base = base
        self._overrides: Dict[str, float] = {
            fact_id: validate_accuracy(value, f"re-calibrated accuracy for {fact_id!r}")
            for fact_id, value in fact_accuracies.items()
        }

    @property
    def base(self) -> ChannelModel:
        """The channel model the re-estimates are overlaid on."""
        return self._base

    @property
    def fact_accuracies(self) -> Dict[str, float]:
        """A copy of the per-fact re-estimated accuracies."""
        return dict(self._overrides)

    @property
    def uniform_accuracy(self) -> Optional[float]:
        if not self._overrides:
            return self._base.uniform_accuracy
        return None

    def accuracy_for(self, fact_id: str) -> float:
        accuracy = self._overrides.get(fact_id)
        if accuracy is not None:
            return accuracy
        return self._base.accuracy_for(fact_id)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(base={self._base!r}, overrides={len(self._overrides)})"


class CalibratedCrowdModel(PerFactChannelModel):
    """Per-fact channels calibrated from qualification pre-test estimates.

    The default accuracy is typically a pooled estimate
    (:func:`repro.crowdsim.qualification.pooled_accuracy`); per-fact
    overrides come from finer-grained pre-tests, e.g. one per task domain
    (:func:`repro.crowdsim.qualification.calibrate_domain_accuracies`).
    """

    @classmethod
    def from_domain_estimates(
        cls,
        domain_estimates: Mapping[str, object],
        fact_domains: Mapping[str, str],
        default_accuracy: float,
    ) -> "CalibratedCrowdModel":
        """Build per-fact channels from per-domain accuracy estimates.

        ``domain_estimates`` maps domain names to either plain floats or
        :class:`~repro.crowdsim.qualification.QualificationResult` objects;
        ``fact_domains`` tags each fact with its domain.  Facts whose domain
        was never calibrated (or that carry no domain) fall back to
        ``default_accuracy``.
        """
        overrides: Dict[str, float] = {}
        for fact_id, domain in fact_domains.items():
            estimate = domain_estimates.get(domain)
            if estimate is None:
                continue
            overrides[fact_id] = float(
                getattr(estimate, "estimated_accuracy", estimate)
            )
        return cls(default_accuracy, overrides)
