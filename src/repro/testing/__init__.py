"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness the chaos suite
drives: deterministic, opt-in failures (worker kills, hung dispatches,
corrupted generation headers, dropped connections) injected at the runtime's
fault points so recovery behaviour can be asserted instead of hoped for.
Importing :mod:`repro.testing` never changes behaviour on its own — every
fault is inert until a :class:`~repro.testing.faults.FaultPlan` is installed
(programmatically or through the ``REPRO_FAULTS`` environment variable).
"""

from repro.testing.faults import FaultPlan, injected, install, plan_from_env, uninstall

__all__ = ["FaultPlan", "injected", "install", "plan_from_env", "uninstall"]
