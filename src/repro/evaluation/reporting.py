"""Plain-text table and series formatting for benchmark output.

The benchmark harnesses print the same rows and series the paper reports;
these helpers keep that output aligned and readable without any plotting
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import CrowdFusionError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.4f}",
) -> str:
    """Render a fixed-width text table.

    Floats are formatted with ``float_format``; everything else with ``str``.
    """
    if not headers:
        raise CrowdFusionError("a table needs at least one column")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise CrowdFusionError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )

    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    lines = [render(list(headers)), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[Tuple[float, float]], precision: int = 4
) -> str:
    """Render one named (x, y) series as a compact single line per point."""
    if not points:
        raise CrowdFusionError(f"series {name!r} has no points")
    body = ", ".join(
        f"({x:g}, {y:.{precision}f})" for x, y in points
    )
    return f"{name}: {body}"
