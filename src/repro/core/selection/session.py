"""Persistent refinement sessions: one engine amortised over many rounds.

A multi-round CrowdFusion run repeats select → collect → merge on the *same*
output support: Bayesian merging only reweights the probability of each
support row, it never adds or removes rows.  Rebuilding a fresh
:class:`~repro.core.selection.engine.EntropyEngine` every round therefore
throws away every structural cache — the contiguous support arrays, the
per-fact 0/1 bit columns, the facts-of-interest cells — and, on the fresh
path, also round-trips the posterior through a Python dict twice per round
(once to build the merged :class:`JointDistribution`, once to re-extract its
arrays).

A :class:`RefinementSession` owns one engine for the lifetime of a run:

* :meth:`RefinementSession.select` hands the live engine to any session-aware
  selector (all greedy variants), so every round's scan starts from warm
  caches;
* :meth:`RefinementSession.merge` applies a round's answers as a pure array
  reweight (:meth:`EntropyEngine.reweight`) — no dict materialisation at all;
* marginals, entropy/utility and predicted labels are computed directly from
  the cached arrays, and a full :class:`JointDistribution` posterior is only
  materialised on demand (:attr:`RefinementSession.distribution`).

A :class:`SessionPool` keys sessions by entity so batched experiments (one
refinement problem per book, rounds interleaved in lock-step) reuse every
entity's cached state across all global passes instead of building one engine
per entity per pass.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.entropy import entropy_bits
from repro.core.merging import answer_likelihood_array
from repro.core.selection.base import SelectionResult, TaskSelector
from repro.core.selection.engine import EntropyEngine
from repro.exceptions import SelectionError


class RefinementSession:
    """Cached selection/merging state for one multi-round refinement run.

    Parameters
    ----------
    distribution:
        The prior joint output distribution.  Its support — and therefore
        every structural cache — is fixed for the session's lifetime.
    channel:
        The :class:`~repro.core.crowd.ChannelModel` used both to score
        candidate task sets and to merge the received answers, so what
        selection expects is exactly what merging applies.
    interest_ids:
        Optional facts of interest; when given, the session's engine also
        tracks ``H(I, T)`` and session-aware query selectors reuse it.
    """

    def __init__(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        interest_ids: Optional[Sequence[str]] = None,
    ):
        self._initial = distribution
        self._channel = channel
        self._interest_ids = tuple(interest_ids) if interest_ids else ()
        self._engine = EntropyEngine(
            distribution, channel, interest_ids=interest_ids
        )
        self._materialized: Optional[JointDistribution] = distribution
        self._rounds_merged = 0

    # -- structure -------------------------------------------------------------------

    @property
    def engine(self) -> EntropyEngine:
        """The live engine; selectors score candidates against it directly."""
        return self._engine

    @property
    def channel(self) -> ChannelModel:
        """The channel model shared by selection and merging."""
        return self._channel

    @property
    def interest_ids(self) -> "tuple[str, ...]":
        """Facts of interest the session was built with (empty if none)."""
        return self._interest_ids

    @property
    def fact_ids(self) -> "tuple[str, ...]":
        """Ordered fact ids of the underlying distribution."""
        return self._initial.fact_ids

    @property
    def num_facts(self) -> int:
        return self._initial.num_facts

    @property
    def rounds_merged(self) -> int:
        """Number of answer sets merged into this session so far."""
        return self._rounds_merged

    # -- current posterior -----------------------------------------------------------

    @property
    def distribution(self) -> JointDistribution:
        """The current posterior, materialised on demand and cached until the
        next merge.  Support rows whose mass reached exactly zero are dropped
        from the materialised object (matching :func:`merge_answers`), while
        the session itself keeps them for row alignment."""
        if self._materialized is None:
            self._materialized = JointDistribution.from_support_arrays(
                self._initial.fact_ids,
                self._engine.support_masks,
                self._engine.probabilities,
            )
        return self._materialized

    def entropy(self) -> float:
        """Shannon entropy ``H(F)`` of the current posterior, from the arrays."""
        return entropy_bits(self._engine.probabilities)

    def utility(self) -> float:
        """PWS-quality ``Q(F) = −H(F)`` of the current posterior."""
        return -self.entropy()

    def marginal(self, fact_id: str) -> float:
        """Marginal truth probability of one fact (a cached-column dot product)."""
        return float(self._engine.weighted_bits(fact_id).sum())

    def marginals(self) -> Dict[str, float]:
        """Per-fact marginal truth probabilities of the current posterior."""
        return {fact_id: self.marginal(fact_id) for fact_id in self.fact_ids}

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Threshold the marginals into boolean labels (strictly greater wins)."""
        return {
            fact_id: probability > threshold
            for fact_id, probability in self.marginals().items()
        }

    # -- the select / merge cycle ----------------------------------------------------

    def select(
        self, selector: TaskSelector, k: int, exclude: Sequence[str] = ()
    ) -> SelectionResult:
        """Select up to ``k`` tasks against the session's cached state."""
        return selector.select_with_session(self, k, exclude=exclude)

    def merge(self, answers: AnswerSet) -> None:
        """Fold one round's answers into the posterior (Equation 3).

        A pure array update: the per-row likelihoods are computed against the
        session's fixed support and multiplied into the engine's probability
        vector.  Invalidates the materialised posterior.
        """
        weights = answer_likelihood_array(self._initial, answers, self._channel)
        self._engine.reweight(weights)
        self._materialized = None
        self._rounds_merged += 1


class SessionPool:
    """A keyed pool of refinement sessions sharing one lifecycle.

    The batched-experiment consumer: one session per entity (book, flight),
    built once before the first global pass and reused — warm bit columns,
    warm partitions — for every subsequent pass.  Aggregate quality metrics
    (summed utility, pooled predicted labels) are computed straight from the
    sessions' cached arrays.
    """

    def __init__(self) -> None:
        self._sessions: Dict[str, RefinementSession] = {}

    def add(
        self,
        key: str,
        distribution: JointDistribution,
        channel: ChannelModel,
        interest_ids: Optional[Sequence[str]] = None,
    ) -> RefinementSession:
        """Create, register and return the session for ``key``."""
        if key in self._sessions:
            raise SelectionError(f"session pool already contains key {key!r}")
        session = RefinementSession(distribution, channel, interest_ids=interest_ids)
        self._sessions[key] = session
        return session

    def __getitem__(self, key: str) -> RefinementSession:
        try:
            return self._sessions[key]
        except KeyError:
            raise SelectionError(f"session pool has no key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[RefinementSession]:
        return iter(self._sessions.values())

    def keys(self) -> "tuple[str, ...]":
        return tuple(self._sessions)

    # -- aggregates ------------------------------------------------------------------

    def total_utility(self) -> float:
        """Summed PWS-quality over all sessions (the experiment curves' y-axis)."""
        return float(sum(session.utility() for session in self._sessions.values()))

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Pooled per-fact labels across all sessions."""
        labels: Dict[str, bool] = {}
        for session in self._sessions.values():
            labels.update(session.predicted_labels(threshold))
        return labels
