"""Multi-host cluster orchestration: leases, fencing, and bit-identity.

The cluster's headline contract mirrors the single-host orchestrator's: a
sweep leased out over TCP produces a curve bit-identical to the serial
runner, whatever the workers do.  These tests run the coordinator in-process
with shard workers on threads (loopback sockets, no forks), so they exercise
the full wire protocol — handshake, grants, heartbeats, results, shutdown —
inside plain tier-1.  Fork-based local-worker pools and SIGKILL chaos live
in ``tests/chaos/test_cluster_recovery.py``.
"""

import os
import threading

import pytest

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import build_problems, run_quality_experiment
from repro.evaluation.experiment import ExperimentConfig
from repro.exceptions import OrchestrationError
from repro.fusion import ModifiedCRH
from repro.orchestration import ClusterConfig, run_cluster_experiment
from repro.orchestration.cluster import worker_journal_paths
from repro.orchestration.cluster_worker import run_shard_worker
from repro.orchestration.journal import read_records
from repro.orchestration.orchestrator import JOURNAL_NAME
from repro.testing import faults
from repro.testing.faults import FaultPlan


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=6, num_sources=10, max_sources_per_book=8, seed=3)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


CONFIG = ExperimentConfig(selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=11)


def assert_identical_curves(expected, actual):
    assert len(expected.points) == len(actual.points)
    for theirs, ours in zip(expected.points, actual.points):
        assert theirs == ours  # exact float equality, field by field


def cluster_config(tmp_path, **overrides):
    defaults = dict(
        run_dir=str(tmp_path / "run"),
        lease_ttl_s=10.0,
        heartbeat_s=0.5,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def run_with_thread_workers(
    problems, config, cluster, workers=1, worker_config=None, budgets=None
):
    """Drive a cluster sweep with shard workers on threads; collect errors."""
    threads = []
    worker_errors = []

    def worker_body(port, worker_id):
        try:
            run_shard_worker(
                problems,
                worker_config or config,
                dict(budgets or {}),
                "127.0.0.1",
                port,
                worker_id,
                reconnect_window_s=5.0,
            )
        except OrchestrationError as error:
            worker_errors.append(error)

    def start_workers(port):
        for ordinal in range(workers):
            thread = threading.Thread(
                target=worker_body, args=(port, f"thread-{ordinal}"), daemon=True
            )
            thread.start()
            threads.append(thread)

    report = run_cluster_experiment(
        problems, config, cluster, budgets=budgets, on_listening=start_workers
    )
    for thread in threads:
        thread.join(timeout=15.0)
    assert not any(thread.is_alive() for thread in threads), "worker thread leaked"
    return report, worker_errors


class TestClusterConfigValidation:
    def test_heartbeat_must_sit_inside_lease_ttl(self):
        with pytest.raises(OrchestrationError, match="heartbeat_s must sit"):
            ClusterConfig(run_dir="d", lease_ttl_s=1.0, heartbeat_s=1.0)
        with pytest.raises(OrchestrationError, match="heartbeat_s must sit"):
            ClusterConfig(run_dir="d", heartbeat_s=0.0)

    def test_bounds_are_enforced(self):
        with pytest.raises(OrchestrationError, match="run_dir"):
            ClusterConfig(run_dir="")
        with pytest.raises(OrchestrationError, match="lease_entities"):
            ClusterConfig(run_dir="d", lease_entities=0)
        with pytest.raises(OrchestrationError, match="max_attempts"):
            ClusterConfig(run_dir="d", max_attempts=0)
        with pytest.raises(OrchestrationError, match="retry_backoff_s"):
            ClusterConfig(run_dir="d", retry_backoff_s=-0.1)
        with pytest.raises(OrchestrationError, match="local_workers"):
            ClusterConfig(run_dir="d", local_workers=-1)

    def test_empty_problem_list_is_refused(self, tmp_path):
        with pytest.raises(OrchestrationError, match="empty problem list"):
            run_cluster_experiment([], CONFIG, cluster_config(tmp_path))


class TestClusterEquivalence:
    def test_leased_sweep_matches_serial_runner(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        cluster = cluster_config(tmp_path, lease_entities=2)
        report, errors = run_with_thread_workers(
            problems, CONFIG, cluster, workers=2
        )
        assert errors == []
        assert_identical_curves(serial, report.result)
        assert report.completed == len(problems)
        assert report.quarantined == ()
        assert report.stats.results_accepted == len(problems)
        assert report.stats.results_rejected == 0
        assert report.stats.leases_expired == 0
        assert report.stats.epoch == 1  # nothing was ever fenced

    def test_accepted_results_land_in_worker_journals(self, problems, tmp_path):
        cluster = cluster_config(tmp_path, lease_entities=2)
        report, _errors = run_with_thread_workers(
            problems, CONFIG, cluster, workers=2
        )
        journals = worker_journal_paths(cluster.run_dir)
        assert journals, "no worker journal was written"
        done = [
            record
            for path in journals
            for record in read_records(path)
            if record["type"] == "entity_done"
        ]
        assert sorted(record["index"] for record in done) == list(
            range(len(problems))
        )
        for record in done:
            # Same seed provenance as every other execution path — the root
            # of the bit-identity guarantee.
            assert record["seeds"]["worker_seed"] == CONFIG.seed * 7919 + record["index"]
            assert record["worker"].startswith("thread-")
        # The coordinator journal carries decisions, never entity payloads.
        coordinator_records = read_records(
            os.path.join(cluster.run_dir, JOURNAL_NAME)
        )
        assert not any(r["type"] == "entity_done" for r in coordinator_records)
        assert any(r["type"] == "lease_granted" for r in coordinator_records)
        assert any(r["type"] == "cluster_stats" for r in coordinator_records)

    def test_budget_overrides_flow_through(self, problems, tmp_path):
        budgets = {problems[0].entity: 3, problems[1].entity: 15}
        serial = run_quality_experiment(problems, CONFIG, budgets=budgets)
        report, errors = run_with_thread_workers(
            problems, CONFIG, cluster_config(tmp_path), budgets=budgets
        )
        assert errors == []
        assert_identical_curves(serial, report.result)


class TestClusterResume:
    def test_resume_of_a_complete_run_recomputes_nothing(self, problems, tmp_path):
        cluster = cluster_config(tmp_path)
        first, _errors = run_with_thread_workers(problems, CONFIG, cluster)
        resumed = run_cluster_experiment(
            problems,
            CONFIG,
            cluster_config(tmp_path, resume=True),
        )  # no workers: every entity must replay from the merged journals
        assert resumed.resumed == len(problems)
        assert resumed.completed == len(problems)
        assert_identical_curves(first.result, resumed.result)

    def test_fresh_start_on_existing_run_dir_requires_resume(
        self, problems, tmp_path
    ):
        cluster = cluster_config(tmp_path)
        run_with_thread_workers(problems, CONFIG, cluster)
        with pytest.raises(OrchestrationError, match="resume"):
            run_cluster_experiment(problems, CONFIG, cluster_config(tmp_path))


class TestFencingAndDelivery:
    def test_duplicate_delivery_is_dropped_not_journalled_twice(
        self, problems, tmp_path
    ):
        serial = run_quality_experiment(problems, CONFIG)
        cluster = cluster_config(tmp_path, lease_entities=4)
        faults.install(FaultPlan(duplicate_entity_result=1, duplicate_limit=2))
        report, errors = run_with_thread_workers(problems, CONFIG, cluster)
        assert errors == []
        assert report.stats.duplicates_dropped == 2
        assert report.stats.results_accepted == len(problems)
        assert_identical_curves(serial, report.result)
        done = [
            record
            for path in worker_journal_paths(cluster.run_dir)
            for record in read_records(path)
            if record["type"] == "entity_done"
        ]
        indices = [record["index"] for record in done]
        assert len(indices) == len(set(indices)), "a duplicate reached a journal"
        duplicates = [
            r
            for r in read_records(os.path.join(cluster.run_dir, JOURNAL_NAME))
            if r["type"] == "result_duplicate"
        ]
        assert len(duplicates) == 2

    def test_failed_entities_retry_and_converge(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        cluster = cluster_config(tmp_path, max_attempts=3)
        faults.install(FaultPlan(fail_entity_at=1, fail_entity_limit=2))
        report, errors = run_with_thread_workers(problems, CONFIG, cluster)
        assert errors == []
        assert report.completed == len(problems)
        assert report.quarantined == ()
        assert_identical_curves(serial, report.result)
        failures = [
            r
            for r in read_records(os.path.join(cluster.run_dir, JOURNAL_NAME))
            if r["type"] == "entity_failed"
        ]
        assert len(failures) == 2

    def test_poison_entities_quarantine_after_max_attempts(
        self, problems, tmp_path
    ):
        cluster = cluster_config(tmp_path, lease_entities=1, max_attempts=2)
        faults.install(FaultPlan(fail_entity_at=1, fail_entity_limit=4))
        report, errors = run_with_thread_workers(problems, CONFIG, cluster)
        assert errors == []
        # Four injected failures at one-entity leases and two attempts each:
        # entities 0 and 1 burn both attempts and quarantine; the rest pass.
        assert len(report.quarantined) == 2
        assert report.completed == len(problems) - 2
        quarantined = [
            r
            for r in read_records(os.path.join(cluster.run_dir, JOURNAL_NAME))
            if r["type"] == "quarantined"
        ]
        assert sorted(r["index"] for r in quarantined) == [0, 1]

    def test_worker_for_a_different_sweep_is_refused(self, problems, tmp_path):
        other_config = ExperimentConfig(
            selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=99
        )
        cluster = cluster_config(tmp_path)
        threads = []
        refusals = []

        def wrong_worker(port):
            try:
                run_shard_worker(
                    problems, other_config, {}, "127.0.0.1", port,
                    "wrong-sweep", reconnect_window_s=2.0,
                )
            except OrchestrationError as error:
                refusals.append(str(error))

        def right_worker(port):
            run_shard_worker(
                problems, CONFIG, {}, "127.0.0.1", port,
                "right-sweep", reconnect_window_s=5.0,
            )

        def start_workers(port):
            for target in (wrong_worker, right_worker):
                thread = threading.Thread(target=target, args=(port,), daemon=True)
                thread.start()
                threads.append(thread)

        report = run_cluster_experiment(
            problems, CONFIG, cluster, on_listening=start_workers
        )
        for thread in threads:
            thread.join(timeout=15.0)
        assert report.completed == len(problems)
        assert len(refusals) == 1
        assert "refused worker wrong-sweep" in refusals[0]
        assert "fingerprint_mismatch" in refusals[0]
        # Every accepted record came from the matching worker.
        done = [
            record
            for path in worker_journal_paths(cluster.run_dir)
            for record in read_records(path)
            if record["type"] == "entity_done"
        ]
        assert all(record["worker"] == "right-sweep" for record in done)


@pytest.mark.parallel
class TestLocalWorkerPool:
    def test_forked_local_workers_match_serial_runner(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        report = run_cluster_experiment(
            problems,
            CONFIG,
            cluster_config(tmp_path, lease_entities=2, local_workers=2),
        )
        assert_identical_curves(serial, report.result)
        assert report.completed == len(problems)
        assert report.stats.results_rejected == 0
        import multiprocessing

        assert multiprocessing.active_children() == []
