"""Reference pure-Python evaluation and selection paths.

These are the seed implementations that predate the vectorized
:class:`~repro.core.selection.engine.EntropyEngine`: ``O(2^k · |O|)`` dict
arithmetic per entropy evaluation and a greedy loop that rebuilds every
candidate task set from scratch.  They are kept verbatim (modulo the shared
popcount helper, and a guard that refuses the heterogeneous channel models
the seed never knew about) for two purposes:

* **equivalence testing** — the engine and every selector built on it must
  reproduce these numbers to within floating-point noise, which the property
  tests in ``tests/core/selection`` assert;
* **benchmarking** — ``benchmarks/bench_selection_hotpath.py`` measures the
  old-vs-new speedup against this exact code.

Do not "optimise" this module; its slowness is the point.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.assignment import popcount, project_mask
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution, entropy_of
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.utility import crowd_entropy
from repro.exceptions import SelectionError


def reference_answer_distribution(
    crowd: CrowdModel, distribution: JointDistribution, task_ids: Sequence[str]
) -> Dict[int, float]:
    """Equation 2 evaluated the pre-engine way: one term per (answer, projection).

    Returns the unnormalised ``answer mask -> mass`` mapping (the masses sum
    to one up to rounding because the support does).
    """
    accuracy = getattr(crowd, "uniform_accuracy", None)
    if accuracy is None:
        # The seed predates heterogeneous channels; refuse clearly instead of
        # silently computing with the wrong noise model.
        raise SelectionError(
            "the reference path models a uniform crowd only; "
            "use an engine-backed selector for heterogeneous channel models"
        )
    if not task_ids:
        raise SelectionError("task set must contain at least one fact")
    if len(set(task_ids)) != len(task_ids):
        raise SelectionError("task set contains duplicate fact ids")
    positions = distribution.positions(task_ids)
    k = len(positions)

    projected: Dict[int, float] = {}
    for mask, probability in distribution.items():
        sub = project_mask(mask, positions)
        projected[sub] = projected.get(sub, 0.0) + probability

    error = 1.0 - accuracy
    answer_probs: Dict[int, float] = {}
    for answer_mask in range(1 << k):
        total = 0.0
        for output_sub, probability in projected.items():
            diff = popcount(answer_mask ^ output_sub)
            same = k - diff
            total += probability * (accuracy ** same) * (error ** diff)
        if total > 0.0:
            answer_probs[answer_mask] = total
    return answer_probs


def reference_task_entropy(
    crowd: CrowdModel, distribution: JointDistribution, task_ids: Sequence[str]
) -> float:
    """``H(T)`` via :func:`reference_answer_distribution`."""
    return entropy_of(reference_answer_distribution(crowd, distribution, task_ids).values())


class ReferenceGreedySelector(TaskSelector):
    """Algorithm 1 exactly as the seed shipped it: no caching, no vectorisation.

    Registered as ``greedy_reference`` so benchmarks can time the historical
    hot path without resurrecting old commits.
    """

    name = "greedy_reference"

    def _select(
        self,
        distribution: JointDistribution,
        crowd: CrowdModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        accuracy = getattr(crowd, "uniform_accuracy", None)
        if accuracy is None:
            raise SelectionError(
                "greedy_reference models a uniform crowd only; "
                "use an engine-backed selector for heterogeneous channel models"
            )
        stats = SelectionStats()
        selected: List[str] = []
        remaining = list(candidates)
        current_entropy = 0.0
        noise_entropy = crowd_entropy(accuracy)
        # Import here: greedy.py defines the shared gain tolerance and itself
        # imports the engine machinery this module must stay independent of.
        from repro.core.selection.greedy import GAIN_TOLERANCE

        for _iteration in range(k):
            stats.iterations += 1
            best_id = None
            best_entropy = float("-inf")
            for fact_id in remaining:
                stats.candidate_evaluations += 1
                entropy = reference_task_entropy(crowd, distribution, selected + [fact_id])
                if entropy > best_entropy + TIE_TOLERANCE:
                    best_entropy = entropy
                    best_id = fact_id
            if best_id is None:
                break
            gain = best_entropy - current_entropy - noise_entropy
            if gain <= GAIN_TOLERANCE:
                break
            selected.append(best_id)
            remaining.remove(best_id)
            current_entropy = best_entropy
            if not remaining:
                break

        return SelectionResult(
            task_ids=tuple(selected), objective=current_entropy, stats=stats
        )
