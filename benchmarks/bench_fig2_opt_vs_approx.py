"""Figure 2 — OPT vs Approx vs Random quality curves (F1 and utility).

The paper compares the exact selector, the greedy approximation and random
selection on the 40 books with the fewest statements (so OPT stays feasible),
with k = 2, a 10-task budget per book and crowd accuracies 0.7 / 0.8 / 0.9.
Expected shape: Approx ≈ OPT on both metrics, both clearly above Random, and
quality is not perfectly monotone because crowd answers can be wrong.

We run the same protocol on the 15 smallest synthetic books and persist the
six curves (three accuracies × {F1, utility}) to ``benchmarks/results/``.
"""

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.reporting import format_series

from _bench_utils import write_result

K = 2
BUDGET = 10
ACCURACIES = (0.7, 0.8, 0.9)
SELECTORS = ("opt", "greedy", "random")

_CURVES = {}


def _run(problems, selector, accuracy):
    config = ExperimentConfig(
        selector=selector,
        k=K,
        budget_per_entity=BUDGET,
        worker_accuracy=accuracy,
        use_difficulties=True,
        seed=17,
    )
    return run_quality_experiment(problems, config)


CASES = [(selector, accuracy) for accuracy in ACCURACIES for selector in SELECTORS]


@pytest.mark.parametrize(
    "selector,accuracy", CASES, ids=[f"{s}-Pc{a}" for s, a in CASES]
)
def test_quality_curve(benchmark, small_book_problems, selector, accuracy):
    """Benchmark one full budgeted refinement run and record its curve."""
    result = benchmark.pedantic(
        _run, args=(small_book_problems, selector, accuracy),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _CURVES[(selector, accuracy)] = result
    assert result.final_point.cost > 0


def test_fig2_report_and_shape(benchmark):
    """Persist the Figure-2 series and assert the paper's qualitative claims."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_CURVES) < len(CASES):
        pytest.skip("curve benchmarks did not run")

    lines = []
    for accuracy in ACCURACIES:
        lines.append(f"== Pc = {accuracy} ==")
        for selector in SELECTORS:
            result = _CURVES[(selector, accuracy)]
            lines.append(
                format_series(
                    f"{selector} F1", list(zip(result.costs(), result.f1_series())), 3
                )
            )
            lines.append(
                format_series(
                    f"{selector} utility",
                    list(zip(result.costs(), result.utility_series())),
                    2,
                )
            )
    write_result("fig2_opt_vs_approx.txt", "\n".join(lines))

    for accuracy in ACCURACIES:
        opt = _CURVES[("opt", accuracy)]
        greedy = _CURVES[("greedy", accuracy)]
        random_sel = _CURVES[("random", accuracy)]
        # Approx tracks OPT closely on both measurements.
        assert abs(greedy.final_point.f1 - opt.final_point.f1) < 0.10
        assert abs(greedy.final_point.utility - opt.final_point.utility) < 8.0
        # The informed selectors beat random selection on utility.
        assert greedy.final_point.utility > random_sel.final_point.utility
        # Everyone improves on the machine-only prior.
        assert greedy.final_point.utility > greedy.initial_point.utility
