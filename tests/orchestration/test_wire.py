"""Wire protocol of the cluster coordinator: codec, framing, fault drops.

The coordinator and its shard workers trust :mod:`repro.orchestration.wire`
to refuse anything it cannot interpret — an orchestration layer that guesses
at malformed messages would corrupt sweeps silently.  This suite pins the
codec round trip for every message type, the loud failure modes (unknown
types, unknown fields, missing fields, torn lines), the handshake digest's
stability, and the ``wire_send`` injected-drop behaviour both ends rely on
in the chaos suite.
"""

import socket
import threading

import pytest

from repro.orchestration import wire
from repro.orchestration.wire import (
    ConnectionLost,
    EntityResult,
    Heartbeat,
    Hello,
    LeaseGrant,
    LeaseRevoked,
    MessageStream,
    Shutdown,
    Welcome,
    WireError,
    WireProtocolError,
    decode_message,
    encode_message,
    fingerprint_digest,
)
from repro.testing import faults
from repro.testing.faults import FaultPlan


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


ONE_OF_EACH = [
    Hello(worker="w1", fingerprint="abc123"),
    Welcome(epoch=3, heartbeat_s=2.0, lease_ttl_s=10.0),
    LeaseGrant(lease="lease-0-deadbeef", epoch=3, start=4, stop=8),
    Heartbeat(worker="w1", lease="lease-0-deadbeef", epoch=3),
    EntityResult(
        worker="w1",
        lease="lease-0-deadbeef",
        epoch=3,
        index=5,
        ok=True,
        payload={"curve": [0.1 + 0.2]},
    ),
    EntityResult(
        worker="w1", lease="lease-0-deadbeef", epoch=3, index=6, ok=False,
        error="boom",
    ),
    LeaseRevoked(lease="lease-0-deadbeef", epoch=3, reason="no heartbeat"),
    Shutdown(reason="sweep complete"),
    WireError(code="fingerprint_mismatch", message="wrong sweep", retry_safe=False),
]


class TestCodec:
    @pytest.mark.parametrize(
        "message", ONE_OF_EACH, ids=lambda m: type(m).__name__
    )
    def test_every_message_round_trips(self, message):
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message

    def test_floats_round_trip_bit_exact(self):
        # The payload carries curve floats; the codec must not perturb them.
        message = EntityResult(
            worker="w", lease="l", epoch=1, index=0, ok=True,
            payload={"value": 0.1 + 0.2},
        )
        assert decode_message(encode_message(message)).payload["value"] == 0.1 + 0.2

    def test_non_message_refuses_to_encode(self):
        with pytest.raises(WireProtocolError, match="not a wire message"):
            encode_message({"type": "hello"})

    def test_unknown_type_is_refused(self):
        with pytest.raises(WireProtocolError, match="unknown wire message type"):
            decode_message(b'{"type": "teleport", "to": "mars"}\n')

    def test_unknown_fields_are_refused(self):
        with pytest.raises(WireProtocolError, match=r"unknown fields \['shoe_size'\]"):
            decode_message(b'{"type": "shutdown", "reason": "x", "shoe_size": 9}\n')

    def test_missing_fields_are_refused(self):
        with pytest.raises(WireProtocolError, match="incomplete wire message"):
            decode_message(b'{"type": "lease_grant", "lease": "l"}\n')

    def test_malformed_json_is_refused(self):
        with pytest.raises(WireProtocolError, match="malformed wire line"):
            decode_message(b'{"type": "hello", "worker"\n')

    def test_non_object_is_refused(self):
        with pytest.raises(WireProtocolError, match="must be a JSON object"):
            decode_message(b'["hello"]\n')


class TestFingerprintDigest:
    def test_digest_is_stable_and_order_insensitive(self):
        a = fingerprint_digest({"selector": "greedy", "k": 3, "seed": 11})
        b = fingerprint_digest({"seed": 11, "k": 3, "selector": "greedy"})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_digest_distinguishes_sweeps(self):
        a = fingerprint_digest({"selector": "greedy", "seed": 11})
        b = fingerprint_digest({"selector": "greedy", "seed": 12})
        assert a != b


def _stream_pair():
    left, right = socket.socketpair()
    return MessageStream(left), MessageStream(right)


class TestMessageStream:
    def test_send_and_recv(self):
        ours, theirs = _stream_pair()
        try:
            ours.send(Heartbeat(worker="w", lease="l", epoch=2))
            assert theirs.recv() == Heartbeat(worker="w", lease="l", epoch=2)
        finally:
            ours.close()
            theirs.close()

    def test_messages_keep_order(self):
        ours, theirs = _stream_pair()
        try:
            for index in range(5):
                ours.send(Heartbeat(worker="w", lease="l", epoch=index))
            epochs = [theirs.recv().epoch for _ in range(5)]
            assert epochs == [0, 1, 2, 3, 4]
        finally:
            ours.close()
            theirs.close()

    def test_peer_close_raises_connection_lost(self):
        ours, theirs = _stream_pair()
        ours.close()
        with pytest.raises(ConnectionLost, match="closed by peer"):
            theirs.recv()
        theirs.close()

    def test_torn_line_raises_connection_lost(self):
        left, right = socket.socketpair()
        stream = MessageStream(right)
        left.sendall(b'{"type": "heartbeat", "wor')  # died mid-line
        left.close()
        with pytest.raises(ConnectionLost, match="torn or oversized"):
            stream.recv()
        stream.close()

    def test_send_after_close_raises(self):
        ours, theirs = _stream_pair()
        ours.close()
        with pytest.raises(ConnectionLost, match="already closed"):
            ours.send(Shutdown(reason="x"))
        theirs.close()

    def test_concurrent_senders_never_interleave_lines(self):
        # The worker's heartbeat pump and main loop share one socket; the
        # send lock must keep their lines whole.
        ours, theirs = _stream_pair()
        try:
            def beat():
                for _ in range(50):
                    ours.send(Heartbeat(worker="pump", lease="", epoch=0))

            threads = [threading.Thread(target=beat) for _ in range(3)]
            for thread in threads:
                thread.start()
            received = [theirs.recv() for _ in range(150)]
            for thread in threads:
                thread.join()
            assert all(m == Heartbeat(worker="pump", lease="", epoch=0)
                       for m in received)
        finally:
            ours.close()
            theirs.close()

    def test_injected_drop_tears_the_line_for_the_peer(self):
        # The chaos suite's partition primitive: the sender dies with
        # ConnectionLost, the peer sees a torn line (not a clean EOF after
        # a whole message) — exactly what a cut network looks like.
        ours, theirs = _stream_pair()
        faults.install(FaultPlan(drop_connection_at_record=1))
        with pytest.raises(ConnectionLost, match="dropped"):
            ours.send(Heartbeat(worker="w", lease="l", epoch=1))
        assert ours.closed
        with pytest.raises(ConnectionLost):
            theirs.recv()
        theirs.close()
