"""Section V-D — error analysis of the remaining wrong judgments.

The paper manually inspects the residual errors and attributes them to two
causes: (1) books with many statements get too little budget per statement,
and (2) intrinsically confusing statements (re-ordered author lists, appended
affiliations, misspellings) on which worker accuracy barely exceeds 0.5.

This benchmark reproduces the analysis quantitatively on the synthetic corpus
(where every statement's corruption kind is known): it runs the refinement
with per-claim difficulties enabled and reports the residual error rate per
statement kind and per book-size bucket.
"""

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.metrics import classification_scores
from repro.evaluation.reporting import format_table

from _bench_utils import write_result

BUDGET = 24
K = 2
ACCURACY = 0.85

_STATE = {}


def _refine(problems):
    config = ExperimentConfig(
        selector="greedy_prune_pre",
        k=K,
        budget_per_entity=BUDGET,
        worker_accuracy=ACCURACY,
        use_difficulties=True,
        seed=43,
    )
    return run_quality_experiment(problems, config)


def test_error_analysis_refinement(benchmark, book_problems):
    """Benchmark the refinement run whose residual errors are analysed below."""
    result = benchmark.pedantic(
        _refine, args=(book_problems,), rounds=1, iterations=1, warmup_rounds=0
    )
    _STATE["result"] = result
    assert result.final_point.f1 > result.initial_point.f1


def test_error_analysis_report(benchmark, book_corpus, book_problems):
    """Break residual errors down by statement kind and by book size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "result" not in _STATE:
        pytest.skip("refinement benchmark did not run")

    # Re-run the per-entity refinement to obtain final per-fact labels: the
    # quality experiment tracks aggregate curves, so rebuild labels from a
    # deterministic re-execution with the same configuration.
    config = ExperimentConfig(
        selector="greedy_prune_pre",
        k=K,
        budget_per_entity=BUDGET,
        worker_accuracy=ACCURACY,
        use_difficulties=True,
        seed=43,
    )
    from repro.core.crowd import CrowdModel
    from repro.core.merging import merge_answers
    from repro.core.selection import get_selector
    from repro.crowdsim.platform import SimulatedPlatform
    from repro.crowdsim.worker import WorkerPool

    crowd = CrowdModel(config.model_accuracy)
    predicted = {}
    entity_sizes = {}
    for index, problem in enumerate(book_problems):
        pool = WorkerPool.homogeneous(
            size=25, accuracy=config.worker_accuracy, seed=config.seed * 7919 + index
        )
        platform = SimulatedPlatform(
            ground_truth=problem.gold, workers=pool, difficulties=problem.difficulties
        )
        selector = get_selector(config.selector)
        distribution = problem.prior
        remaining = config.budget_per_entity
        while remaining > 0:
            k = min(config.k, remaining, distribution.num_facts)
            selection = selector.select(distribution, crowd, k)
            if not selection.task_ids:
                break
            answers = platform.collect(selection.task_ids)
            distribution = merge_answers(distribution, answers, crowd)
            remaining -= len(selection.task_ids)
        labels = distribution.predicted_labels()
        predicted.update(labels)
        entity_sizes[problem.entity] = len(problem.facts)

    # --- error rate per statement kind -------------------------------------------
    kind_rows = []
    kind_errors = {}
    for kind in sorted(set(book_corpus.statement_kinds.values())):
        claim_ids = [
            claim_id
            for claim_id, claim_kind in book_corpus.statement_kinds.items()
            if claim_kind == kind and claim_id in predicted
        ]
        if not claim_ids:
            continue
        wrong = sum(
            1 for claim_id in claim_ids
            if predicted[claim_id] != book_corpus.gold[claim_id]
        )
        rate = wrong / len(claim_ids)
        kind_errors[kind] = rate
        kind_rows.append([kind, len(claim_ids), wrong, rate])

    # --- error rate per book-size bucket -------------------------------------------
    buckets = {"small (<=5 claims)": [], "large (>5 claims)": []}
    for problem in book_problems:
        bucket = "small (<=5 claims)" if len(problem.facts) <= 5 else "large (>5 claims)"
        for fact_id in problem.prior.fact_ids:
            if fact_id in predicted:
                buckets[bucket].append(
                    predicted[fact_id] != book_corpus.gold[fact_id]
                )
    size_rows = []
    size_errors = {}
    for bucket, errors in buckets.items():
        if errors:
            rate = sum(errors) / len(errors)
            size_errors[bucket] = rate
            size_rows.append([bucket, len(errors), sum(errors), rate])

    scores = classification_scores(predicted, book_corpus.gold)
    report = "\n\n".join(
        [
            f"Overall after refinement: F1={scores.f1:.3f} accuracy={scores.accuracy:.3f}",
            "Residual error rate by statement kind:\n"
            + format_table(["kind", "claims", "wrong", "error rate"], kind_rows),
            "Residual error rate by book size:\n"
            + format_table(["bucket", "claims", "wrong", "error rate"], size_rows),
        ]
    )
    write_result("error_analysis.txt", report)

    # Shape assertions mirroring Section V-D:
    # confusing statement kinds (reordered / misspelled / organization) carry a
    # higher residual error rate than clean canonical statements.
    if "canonical" in kind_errors:
        hard_kinds = [
            kind_errors[kind]
            for kind in ("reordered", "misspelled", "organization")
            if kind in kind_errors
        ]
        if hard_kinds:
            assert max(hard_kinds) >= kind_errors["canonical"]
    # Books with many statements retain at least as many errors as small books.
    if len(size_errors) == 2:
        assert (
            size_errors["large (>5 claims)"]
            >= size_errors["small (<=5 claims)"] - 0.05
        )
