"""Unit tests for the synthetic flight corpus generator."""

import pytest

from repro.datasets.flights import (
    Flight,
    FlightCorpusConfig,
    generate_flight_corpus,
)
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def corpus():
    return generate_flight_corpus(FlightCorpusConfig(num_flights=25, num_sources=10, seed=5))


class TestConfigValidation:
    def test_defaults_are_valid(self):
        FlightCorpusConfig()

    def test_invalid_counts_rejected(self):
        with pytest.raises(DatasetError):
            FlightCorpusConfig(num_flights=0)
        with pytest.raises(DatasetError):
            FlightCorpusConfig(num_sources=0)

    def test_invalid_coverage_rejected(self):
        with pytest.raises(DatasetError):
            FlightCorpusConfig(min_sources_per_flight=0)
        with pytest.raises(DatasetError):
            FlightCorpusConfig(num_sources=3, max_sources_per_flight=5)

    def test_invalid_copy_probability_rejected(self):
        with pytest.raises(DatasetError):
            FlightCorpusConfig(copy_probability=1.5)

    def test_flight_departure_validation(self):
        with pytest.raises(DatasetError):
            Flight("CX1", "HKG", "SFO", true_departure_minutes=2000)

    def test_flight_departure_formatting(self):
        flight = Flight("CX1", "HKG", "SFO", true_departure_minutes=605)
        assert flight.true_departure == "10:05"


class TestGeneratedCorpus:
    def test_flight_count(self, corpus):
        assert len(corpus.flights) == 25

    def test_every_claim_labelled(self, corpus):
        claim_ids = {claim.claim_id for claim in corpus.database.claims()}
        assert set(corpus.gold) == claim_ids

    def test_exactly_one_true_value_per_flight(self, corpus):
        """Departure time is single-truth: at most one claim per flight is gold-true."""
        for flight in corpus.flights:
            true_values = {
                claim.value
                for claim in corpus.claims_for_flight(flight.flight_id)
                if corpus.gold[claim.claim_id]
            }
            assert len(true_values) <= 1
            if true_values:
                assert true_values == {flight.true_departure}

    def test_deterministic_given_seed(self):
        config = FlightCorpusConfig(
            num_flights=10, num_sources=6, max_sources_per_flight=5, seed=9
        )
        assert generate_flight_corpus(config).gold == generate_flight_corpus(config).gold

    def test_raw_correctness_in_plausible_range(self, corpus):
        assert 0.3 <= corpus.raw_correctness() <= 0.9

    def test_unknown_flight_lookup_raises(self, corpus):
        with pytest.raises(DatasetError):
            corpus.flight("XX000-99")

    def test_claims_reference_existing_flights(self, corpus):
        flight_ids = {flight.flight_id for flight in corpus.flights}
        for claim in corpus.database.claims():
            assert claim.entity in flight_ids
            assert claim.attribute == "departure_time"
