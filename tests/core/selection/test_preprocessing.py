"""Unit tests for the preprocessed (accelerated) greedy selectors."""

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import (
    GreedySelector,
    PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector,
)
from repro.core.selection.preprocessing import _entropy_bits, _noise_kernel
from repro.datasets.running_example import running_example_distribution


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


def random_sparse_distribution(num_facts, support, seed):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=min(support, 1 << num_facts), replace=False)
    probs = rng.uniform(0.05, 1.0, size=len(masks))
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(fact_ids, dict(zip((int(m) for m in masks), probs)))


class TestNoiseKernel:
    def test_rows_sum_to_one(self):
        kernel = _noise_kernel(3, 0.8)
        # Summing P(answer | projection) over all answers gives 1 per projection.
        assert np.allclose(kernel.sum(axis=0), 1.0)

    def test_diagonal_dominates_for_accurate_crowd(self):
        kernel = _noise_kernel(2, 0.9)
        for column in range(kernel.shape[1]):
            assert kernel[column, column] == kernel[:, column].max()

    def test_perfect_crowd_is_identity(self):
        kernel = _noise_kernel(2, 1.0)
        assert np.allclose(kernel, np.eye(4))

    def test_entropy_bits_matches_manual(self):
        probs = np.array([0.5, 0.5, 0.0])
        assert _entropy_bits(probs) == pytest.approx(1.0)
        assert _entropy_bits(np.array([1.0])) == pytest.approx(0.0)


class TestEquivalenceWithPlainGreedy:
    def test_running_example(self, crowd):
        dist = running_example_distribution()
        for k in range(1, 5):
            plain = GreedySelector().select(dist, crowd, k)
            fast = PreprocessingGreedySelector().select(dist, crowd, k)
            both = PrunedPreprocessingGreedySelector().select(dist, crowd, k)
            assert fast.task_ids == plain.task_ids
            assert both.task_ids == plain.task_ids
            assert fast.objective == pytest.approx(plain.objective, abs=1e-9)
            assert both.objective == pytest.approx(plain.objective, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_sparse_distributions(self, crowd, seed):
        dist = random_sparse_distribution(num_facts=7, support=40, seed=seed)
        k = 3
        plain = GreedySelector().select(dist, crowd, k)
        fast = PreprocessingGreedySelector().select(dist, crowd, k)
        assert fast.task_ids == plain.task_ids
        assert fast.objective == pytest.approx(plain.objective, abs=1e-9)

    @pytest.mark.parametrize("accuracy", [0.6, 0.75, 0.95, 1.0])
    def test_equivalence_across_accuracies(self, accuracy):
        dist = random_sparse_distribution(num_facts=6, support=30, seed=11)
        crowd = CrowdModel(accuracy)
        plain = GreedySelector().select(dist, crowd, 3)
        fast = PrunedPreprocessingGreedySelector().select(dist, crowd, 3)
        assert fast.task_ids == plain.task_ids
        assert fast.objective == pytest.approx(plain.objective, abs=1e-9)


class TestAcceleratedBehaviour:
    def test_early_stop_on_certain_facts(self, crowd):
        dist = JointDistribution.independent({"a": 1.0, "b": 0.5, "c": 1.0})
        result = PreprocessingGreedySelector().select(dist, crowd, 3)
        assert result.task_ids == ("b",)

    def test_pruned_variant_marks_uncompetitive_facts(self, crowd):
        # Two genuinely uncertain facts plus near-certain facts of *varying*
        # confidence: in the last iteration (zero slack) the weaker ones are
        # strictly worse than the best candidate and get marked pruned.
        marginals = {"f0": 0.5, "f1": 0.5}
        marginals.update({f"f{i}": 0.80 + 0.02 * i for i in range(2, 10)})
        dist = JointDistribution.independent(marginals)
        result = PrunedPreprocessingGreedySelector().select(dist, crowd, 3)
        assert result.stats.pruned_facts > 0

    def test_objective_matches_direct_entropy(self, crowd):
        dist = random_sparse_distribution(num_facts=6, support=25, seed=3)
        result = PreprocessingGreedySelector().select(dist, crowd, 3)
        assert result.objective == pytest.approx(
            crowd.task_entropy(dist, result.task_ids), abs=1e-9
        )

    def test_faster_than_reference_greedy_on_large_support(self, crowd):
        # Every greedy variant now runs on the shared engine, so the speed
        # comparison that matters is against the seed's pure-Python path.
        from repro.core.selection import ReferenceGreedySelector

        dist = random_sparse_distribution(num_facts=14, support=2000, seed=9)
        reference = ReferenceGreedySelector().select(dist, crowd, 4)
        fast = PrunedPreprocessingGreedySelector().select(dist, crowd, 4)
        assert fast.task_ids == reference.task_ids
        assert fast.stats.elapsed_seconds < reference.stats.elapsed_seconds
