"""Unit tests for the shared vectorized kernels in ``repro.core.entropy``."""

import numpy as np
import pytest

from repro.core.assignment import popcount
from repro.core.entropy import (
    bsc_transform,
    bsc_transform_rows,
    entropy_bits,
    popcount_array,
    project_columns,
)
from repro.core.selection.preprocessing import _noise_kernel


class TestPopcount:
    def test_scalar_matches_bin_count(self):
        for value in [0, 1, 2, 3, 255, 256, 0b1011011, (1 << 40) - 1]:
            assert popcount(value) == bin(value).count("1")

    def test_array_matches_scalar(self):
        values = np.array([0, 1, 7, 1 << 16, (1 << 20) - 1, 123456789], dtype=np.int64)
        expected = [popcount(int(v)) for v in values]
        assert popcount_array(values).tolist() == expected

    def test_array_handles_wide_masks(self):
        value = (1 << 50) | (1 << 33) | (1 << 17) | 1
        assert popcount_array(np.array([value])).tolist() == [4]


class TestEntropyBits:
    def test_matches_manual(self):
        assert entropy_bits(np.array([0.5, 0.5])) == pytest.approx(1.0)
        assert entropy_bits(np.array([1.0, 0.0])) == pytest.approx(0.0)

    def test_ignores_negative_residue(self):
        # Incremental subtraction can leave ~-1e-16 entries; they carry no mass.
        assert entropy_bits(np.array([1.0, -1e-16])) == pytest.approx(0.0)

    def test_empty_support(self):
        assert entropy_bits(np.array([])) == 0.0


class TestProjectColumns:
    def test_matches_scalar_projection(self):
        from repro.core.assignment import project_mask

        masks = np.array([0b1010, 0b0111, 0b1100], dtype=np.int64)
        positions = (3, 1)
        expected = [project_mask(int(m), positions) for m in masks]
        assert project_columns(masks, positions).tolist() == expected


class TestBscTransform:
    @pytest.mark.parametrize("num_bits", [1, 2, 3, 4])
    @pytest.mark.parametrize("accuracy", [0.5, 0.6, 0.8, 0.95, 1.0])
    def test_matches_dense_kernel(self, num_bits, accuracy):
        """The factorised channel must equal the dense Equation-2 kernel."""
        rng = np.random.default_rng(num_bits * 10 + int(accuracy * 100))
        vector = rng.uniform(0.0, 1.0, size=1 << num_bits)
        dense = _noise_kernel(num_bits, accuracy) @ vector
        fast = bsc_transform(vector, num_bits, accuracy)
        assert np.allclose(fast, dense, atol=1e-12)

    def test_preserves_total_mass(self):
        vector = np.array([0.1, 0.2, 0.3, 0.4])
        out = bsc_transform(vector, 2, 0.8)
        assert out.sum() == pytest.approx(vector.sum())

    def test_zero_bits_is_identity(self):
        vector = np.array([1.0])
        assert bsc_transform(vector, 0, 0.7).tolist() == [1.0]

    def test_rows_variant_matches_per_row(self):
        rng = np.random.default_rng(7)
        matrix = rng.uniform(0.0, 1.0, size=(5, 8))
        rows = bsc_transform_rows(matrix, 3, 0.75)
        for index in range(matrix.shape[0]):
            assert np.allclose(rows[index], bsc_transform(matrix[index], 3, 0.75))

    def test_does_not_mutate_input(self):
        vector = np.array([0.25, 0.75])
        bsc_transform(vector, 1, 0.9)
        assert vector.tolist() == [0.25, 0.75]
