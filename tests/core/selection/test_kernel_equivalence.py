"""Cross-tier selection equivalence: every kernel tier, one behaviour.

The ladder's contract is that the kernel tier is a pure implementation detail:
for any corpus, channel model and selector, every tier selects the identical
task sets and reports entropies within 1e-9.  The ``reference`` tier runs the
compiled tier's exact loop bodies as plain Python, so these tests validate the
compiled *algorithm* even on hosts without numba; the ``compiled`` cases
themselves skip (never fail) where numba is missing.

The wide-fact suite additionally pins the packed representation: a 128-fact
corpus must run a full select/merge refinement loop with packed uint64 bit
planes in every hot-path array — no object dtype anywhere — and agree bit for
bit with the legacy object-dtype engine path (``packed=False``).
"""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.bitplanes import unpack_planes
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.kernels import numba_available
from repro.core.merging import answer_likelihood_array, merge_answers
from repro.core.runtime import RuntimeOptions
from repro.core.selection import (
    GreedySelector,
    ParallelPolicy,
    RefinementSession,
    get_selector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.greedy import run_greedy_on_engine
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution

ACCURACY = 0.82
SELECTORS = ("greedy", "greedy_lazy", "greedy_prune_pre")

#: Tiers exercised unconditionally; ``compiled`` joins where numba imports.
ALWAYS_TIERS = ("numpy", "reference")

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable (or JIT disabled)"
)


def sparse_distribution(num_facts, support, seed):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    return JointDistribution(
        tuple(f"f{i}" for i in range(num_facts)),
        dict(zip((int(mask) for mask in masks), probabilities)),
    )


def heterogeneous_channel(num_facts, seed):
    rng = np.random.default_rng(seed)
    return PerFactChannelModel(
        ACCURACY,
        {
            f"f{i}": float(accuracy)
            for i, accuracy in enumerate(
                rng.uniform(0.6, 0.95, size=num_facts).round(3)
            )
        },
    )


def select_on_tier(tier, distribution, crowd, selector_name, k):
    """One selection driven through a session pinned to ``tier``."""
    session = RefinementSession(
        distribution, crowd, runtime=RuntimeOptions(kernel=tier)
    )
    result = get_selector(selector_name).select_with_session(session, k)
    assert result.stats.kernel == tier
    return result


def scripted_answers(task_ids, round_index):
    return AnswerSet.from_mapping(
        {fact_id: (round_index + position) % 2 == 0
         for position, fact_id in enumerate(task_ids)}
    )


class TestTierEquivalence:
    @pytest.mark.parametrize("selector_name", SELECTORS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_reference_matches_numpy_uniform(self, selector_name, seed):
        distribution = sparse_distribution(14, 384, seed)
        crowd = CrowdModel(ACCURACY)
        baseline = select_on_tier("numpy", distribution, crowd, selector_name, 4)
        other = select_on_tier("reference", distribution, crowd, selector_name, 4)
        assert other.task_ids == baseline.task_ids
        assert abs(other.objective - baseline.objective) <= 1e-9

    @pytest.mark.parametrize("selector_name", SELECTORS)
    def test_reference_matches_numpy_heterogeneous(self, selector_name):
        distribution = sparse_distribution(12, 256, 5)
        crowd = heterogeneous_channel(12, 6)
        baseline = select_on_tier("numpy", distribution, crowd, selector_name, 4)
        other = select_on_tier("reference", distribution, crowd, selector_name, 4)
        assert other.task_ids == baseline.task_ids
        assert abs(other.objective - baseline.objective) <= 1e-9

    @pytest.mark.parametrize("tier", ("reference",))
    def test_multi_round_trajectories_match_numpy(self, tier):
        distribution = sparse_distribution(16, 512, 9)
        crowd = CrowdModel(ACCURACY)

        def run(kernel):
            session = RefinementSession(
                distribution, crowd, runtime=RuntimeOptions(kernel=kernel)
            )
            selector = get_selector("greedy")
            task_sets = []
            for round_index in range(4):
                result = selector.select_with_session(session, 2)
                task_sets.append(result.task_ids)
                session.merge(scripted_answers(result.task_ids, round_index))
            return task_sets, session.distribution

        baseline_sets, baseline_posterior = run("numpy")
        other_sets, other_posterior = run(tier)
        assert other_sets == baseline_sets
        baseline_probs = dict(baseline_posterior.items())
        for mask, probability in other_posterior.items():
            assert probability == pytest.approx(baseline_probs[mask], abs=1e-12)

    @needs_numba
    @pytest.mark.parametrize("selector_name", SELECTORS)
    def test_compiled_matches_numpy_uniform(self, selector_name):
        distribution = sparse_distribution(14, 384, 3)
        crowd = CrowdModel(ACCURACY)
        baseline = select_on_tier("numpy", distribution, crowd, selector_name, 4)
        compiled = select_on_tier("compiled", distribution, crowd, selector_name, 4)
        assert compiled.task_ids == baseline.task_ids
        assert abs(compiled.objective - baseline.objective) <= 1e-9

    @needs_numba
    def test_compiled_matches_numpy_heterogeneous(self):
        distribution = sparse_distribution(12, 256, 7)
        crowd = heterogeneous_channel(12, 8)
        baseline = select_on_tier("numpy", distribution, crowd, "greedy", 4)
        compiled = select_on_tier("compiled", distribution, crowd, "greedy", 4)
        assert compiled.task_ids == baseline.task_ids
        assert abs(compiled.objective - baseline.objective) <= 1e-9


@pytest.mark.parallel
class TestPersistentPoolEquivalence:
    """Tier equivalence must survive the fork/snapshot-ring runtime."""

    @pytest.mark.parametrize("tier", ALWAYS_TIERS)
    def test_persistent_pool_matches_serial(self, tier):
        distribution = sparse_distribution(16, 2048, 11)
        crowd = CrowdModel(ACCURACY)
        runtime = RuntimeOptions(
            workers=2,
            persistent_pool=True,
            parallel_threshold=0,
            kernel=tier,
        )

        def run(options):
            with RefinementSession(distribution, crowd, runtime=options) as session:
                selector = get_selector("greedy")
                task_sets = []
                for round_index in range(3):
                    result = selector.select_with_session(session, 2)
                    task_sets.append(result.task_ids)
                    session.merge(scripted_answers(result.task_ids, round_index))
                return task_sets

        serial_sets = run(RuntimeOptions(kernel=tier))
        pooled_sets = run(runtime)
        assert pooled_sets == serial_sets

    @needs_numba
    def test_persistent_pool_compiled_matches_numpy(self):
        distribution = sparse_distribution(16, 2048, 12)
        crowd = CrowdModel(ACCURACY)

        def run(tier):
            options = RuntimeOptions(
                workers=2, persistent_pool=True, parallel_threshold=0, kernel=tier
            )
            with RefinementSession(distribution, crowd, runtime=options) as session:
                return get_selector("greedy").select_with_session(session, 3).task_ids

        assert run("compiled") == run("numpy")


WIDE_FACTS = 128
WIDE_SUPPORT = 1 << 12


def wide_distribution(seed=21):
    return generate_scale_distribution(
        ScaleCorpusConfig(num_facts=WIDE_FACTS, support_size=WIDE_SUPPORT, seed=seed)
    )


def assert_no_object_arrays(engine):
    """Every hot-path array of a packed engine must be numeric, never object."""
    assert engine.support_masks.ndim == 2
    assert engine.support_masks.dtype == np.uint64
    assert engine.probabilities.dtype == np.float64
    for fact_id in ("f0", "f63", "f64", f"f{WIDE_FACTS - 1}"):
        column = engine.bits(fact_id)
        assert column.dtype == np.int8


class TestWideFactPackedPath:
    def test_engine_defaults_to_packed_past_63_facts(self):
        distribution = wide_distribution()
        engine = EntropyEngine(distribution, CrowdModel(ACCURACY))
        assert_no_object_arrays(engine)
        legacy = EntropyEngine(distribution, CrowdModel(ACCURACY), packed=False)
        assert legacy.support_masks.dtype == object

    def test_packed_selection_matches_object_path(self):
        distribution = wide_distribution()
        crowd = CrowdModel(ACCURACY)
        packed = EntropyEngine(distribution, crowd)
        legacy = EntropyEngine(distribution, crowd, packed=False)
        candidates = distribution.fact_ids
        packed_result = run_greedy_on_engine(packed, 4, candidates)
        legacy_result = run_greedy_on_engine(legacy, 4, candidates)
        assert packed_result.task_ids == legacy_result.task_ids
        assert abs(packed_result.objective - legacy_result.objective) <= 1e-9

    @pytest.mark.parametrize("tier", ALWAYS_TIERS)
    def test_full_refinement_loop_stays_packed(self, tier):
        distribution = wide_distribution()
        crowd = CrowdModel(ACCURACY)
        session = RefinementSession(
            distribution, crowd, runtime=RuntimeOptions(kernel=tier)
        )
        selector = get_selector("greedy")
        for round_index in range(3):
            result = selector.select_with_session(session, 2)
            assert result.task_ids
            assert_no_object_arrays(session.engine)
            session.merge(scripted_answers(result.task_ids, round_index))
        posterior = session.distribution
        # The posterior is rebuilt through the packed trusted constructor —
        # the object-dtype mask column is never materialised on this path.
        assert posterior._planes is not None
        assert posterior._arrays is None
        assert posterior.num_facts == WIDE_FACTS
        assert sum(probability for _, probability in posterior.items()) == (
            pytest.approx(1.0)
        )

    def test_wide_merge_matches_python_reference(self):
        distribution = wide_distribution(seed=22)
        crowd = heterogeneous_channel(WIDE_FACTS, 23)
        task_ids = ("f1", "f64", "f100")
        answers = scripted_answers(task_ids, 0)
        likelihoods = answer_likelihood_array(distribution, answers, crowd)

        masks = unpack_planes(distribution.support_planes())
        probabilities = distribution.support_probabilities()
        judgments = answers.judgments()
        expected = np.ones(masks.shape[0], dtype=np.float64)
        for fact_id, judgment in judgments.items():
            position = distribution.position(fact_id)
            accuracy = crowd.accuracy_for(fact_id)
            for row, mask in enumerate(masks):
                agrees = bool((int(mask) >> position) & 1) == judgment
                expected[row] *= accuracy if agrees else 1.0 - accuracy
        np.testing.assert_allclose(likelihoods, expected, atol=1e-12)

        posterior = merge_answers(distribution, answers, crowd)
        manual = probabilities * likelihoods
        np.testing.assert_allclose(
            np.fromiter(
                (probability for _, probability in posterior.items()),
                dtype=np.float64,
            ),
            manual / manual.sum(),
            atol=1e-12,
        )

    def test_wide_selection_sub_second_sanity(self):
        # The packed path exists so wide corpora stop paying per-row Python
        # cost; a quick absolute sanity bound (generous for CI) catches an
        # accidental re-route through the object path.
        import time

        distribution = wide_distribution()
        engine = EntropyEngine(distribution, CrowdModel(ACCURACY))
        started = time.perf_counter()
        run_greedy_on_engine(engine, 2, distribution.fact_ids[:64])
        assert time.perf_counter() - started < 5.0
