"""Vectorized entropy and noise-channel kernels shared by the hot paths.

Every quantity the selection algorithms evaluate reduces to three array
primitives over the output support:

* projecting support bitmasks onto a set of task positions
  (:func:`project_columns`),
* pushing a projected output distribution through the crowd's per-task
  binary symmetric channel (:func:`bsc_transform`), and
* taking the Shannon entropy of the resulting probability vector
  (:func:`entropy_bits`).

The BSC transform is the key asymptotic improvement: Equation 2 of the paper
sums ``Pc^#Same · (1 − Pc)^#Diff`` over all ``2^k × 2^k`` (answer, projection)
pairs, but the likelihood factorises over tasks, so the answer distribution is
the projected output distribution convolved with ``k`` independent two-point
kernels — ``O(k · 2^k)`` instead of ``O(4^k)``.

Because the convolution is applied one task bit at a time, nothing forces the
``k`` kernels to be identical: :func:`channel_transform` and
:func:`channel_transform_rows` accept one ``(acc_i, 1 − acc_i)`` pair per bit
at the same asymptotic cost, which is what the heterogeneous crowd channel
models (per-fact difficulty, calibrated per-domain skill) run on.  When every
per-bit accuracy is equal they perform *exactly* the floating-point operations
of the uniform transforms, in the same order, so the uniform path is a strict
special case rather than a parallel implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitplanes import pack_masks, plane_bit_column, project_planes

#: 16-bit popcount lookup table; :func:`popcount_array` indexes it four times
#: (shifts of 0/16/32/48) to cover the full int64 range — support masks carry
#: up to 63 bits even though projected task masks stay at 24 or fewer.
_POPCOUNT16 = np.array(
    [bin(value).count("1") for value in range(1 << 16)], dtype=np.uint8
)


def popcount_array(masks: np.ndarray) -> np.ndarray:
    """Per-element popcount of an integer array via the 16-bit lookup table."""
    values = masks.astype(np.int64, copy=False)
    counts = _POPCOUNT16[values & 0xFFFF].astype(np.int64)
    counts += _POPCOUNT16[(values >> 16) & 0xFFFF]
    counts += _POPCOUNT16[(values >> 32) & 0xFFFF]
    counts += _POPCOUNT16[(values >> 48) & 0xFFFF]
    return counts


def entropy_bits(probabilities: np.ndarray) -> float:
    """Shannon entropy (base 2) of a probability vector, ignoring non-positive mass.

    Tiny negative values (floating-point residue of incremental updates) are
    treated as zero, like exact zeros.
    """
    positive = probabilities[probabilities > 0.0]
    if positive.size == 0:
        return 0.0
    return float(-(positive * np.log2(positive)).sum())


def project_columns(masks: np.ndarray, positions: "tuple[int, ...]") -> np.ndarray:
    """Vectorised :func:`repro.core.assignment.project_mask` over a mask array.

    Bit ``i`` of each result is bit ``positions[i]`` of the corresponding
    mask.  ``masks`` may be an ``int64`` column (<= 63 facts), a packed
    ``(rows, words)`` uint64 bit-plane array (the wide-fact fast path, see
    :mod:`repro.core.bitplanes`), or a legacy object-dtype array of Python
    ints — the object path is routed through a one-shot packing so the
    projection itself always runs vectorized.  The projection fits ``int64``
    (task sets are <= 24 bits) and is returned as such.
    """
    if masks.ndim == 2:
        return project_planes(masks, positions)
    if masks.dtype == object:
        if not positions:
            return np.zeros(masks.shape[0], dtype=np.int64)
        return project_planes(pack_masks(masks, max(positions) + 1), positions)
    projected = np.zeros(masks.shape[0], dtype=np.int64)
    for index, position in enumerate(positions):
        projected |= ((masks >> position) & 1) << index
    return projected


def bit_column(masks: np.ndarray, position: int) -> np.ndarray:
    """0/1 ``int8`` truth column of bit ``position`` over any mask layout.

    The single dispatch point the bit-column consumers (the engine's cached
    columns, Bayesian merging) share: ``int64`` columns and object-dtype
    arrays use the shift/AND idiom, packed uint64 planes extract from the
    word holding the bit.
    """
    if masks.ndim == 2:
        return plane_bit_column(masks, position)
    return ((masks >> position) & 1).astype(np.int8, copy=False)


def bsc_transform(vector: np.ndarray, num_bits: int, accuracy: float) -> np.ndarray:
    """Push a ``2^num_bits`` mass vector through ``num_bits`` independent BSCs.

    ``vector[s]`` is the aggregate probability of outputs whose projection onto
    the task set is ``s``; the result's entry ``a`` is
    ``Σ_s vector[s] · Pc^#Same(a, s) · (1 − Pc)^#Diff(a, s)`` — Equation 2,
    computed one task bit at a time in ``O(num_bits · 2^num_bits)``.
    """
    result = np.asarray(vector, dtype=np.float64)
    if num_bits == 0 or accuracy == 1.0:
        return result.copy()
    error = 1.0 - accuracy
    result = result.reshape((2,) * num_bits)
    for axis in range(num_bits):
        result = accuracy * result + error * np.flip(result, axis=axis)
    return result.reshape(-1)


def bsc_transform_rows(matrix: np.ndarray, num_bits: int, accuracy: float) -> np.ndarray:
    """Apply :func:`bsc_transform` to every row of a ``(groups, 2^num_bits)`` matrix.

    Used when the support is partitioned (e.g. by a facts-of-interest cell) and
    each group's projected distribution goes through the same noise channel.
    """
    result = np.asarray(matrix, dtype=np.float64)
    if num_bits == 0 or accuracy == 1.0:
        return result.copy()
    error = 1.0 - accuracy
    groups = result.shape[0]
    result = result.reshape((groups,) + (2,) * num_bits)
    for axis in range(1, num_bits + 1):
        result = accuracy * result + error * np.flip(result, axis=axis)
    return result.reshape(groups, -1)


def channel_transform(vector: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Heterogeneous :func:`bsc_transform`: one 2×2 channel per task bit.

    ``accuracies[i]`` is the worker-correctness probability of the task that
    occupies **bit ``i``** of the answer index (least-significant-bit first,
    matching :func:`project_columns`, which packs ``positions[i]`` into bit
    ``i``).  Each bit is convolved with its own two-point kernel
    ``(acc_i, 1 − acc_i)``; identity channels (``acc_i == 1``) are skipped.

    The per-axis operation — and the axis iteration order — is exactly that
    of :func:`bsc_transform`, so passing ``k`` equal accuracies reproduces the
    uniform transform bit-for-bit.
    """
    result = np.asarray(vector, dtype=np.float64)
    num_bits = len(accuracies)
    if num_bits == 0:
        return result.copy()
    result = result.reshape((2,) * num_bits)
    touched = False
    # Axis 0 holds the most significant bit, so the accuracy of bit i lives
    # at axis (num_bits − 1 − i); iterating axes 0..k−1 matches the uniform
    # transform's operation order exactly.
    for axis in range(num_bits):
        accuracy = float(accuracies[num_bits - 1 - axis])
        if accuracy == 1.0:
            continue
        result = accuracy * result + (1.0 - accuracy) * np.flip(result, axis=axis)
        touched = True
    result = result.reshape(-1)
    return result if touched else result.copy()


def channel_transform_rows(matrix: np.ndarray, accuracies: np.ndarray) -> np.ndarray:
    """Apply :func:`channel_transform` to every row of a ``(groups, 2^k)`` matrix.

    ``accuracies`` follows the same least-significant-bit-first convention:
    ``accuracies[i]`` belongs to the task at bit ``i`` of the column index.
    With all-equal accuracies this is bit-for-bit
    :func:`bsc_transform_rows`.
    """
    result = np.asarray(matrix, dtype=np.float64)
    num_bits = len(accuracies)
    if num_bits == 0:
        return result.copy()
    groups = result.shape[0]
    result = result.reshape((groups,) + (2,) * num_bits)
    touched = False
    for axis in range(1, num_bits + 1):
        accuracy = float(accuracies[num_bits - axis])
        if accuracy == 1.0:
            continue
        result = accuracy * result + (1.0 - accuracy) * np.flip(result, axis=axis)
        touched = True
    result = result.reshape(groups, -1)
    return result if touched else result.copy()
