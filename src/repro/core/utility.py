"""Utility (PWS-quality) and entropy helpers.

The paper measures the quality of a fact set as the negative Shannon entropy
of its joint output distribution (Definition 1), i.e. the PWS-quality of
Cheng et al.  Lower entropy means more confident, hence higher utility.
"""

from __future__ import annotations

import math

from repro.core.distribution import JointDistribution
from repro.types import validate_accuracy


def pws_quality(distribution: JointDistribution) -> float:
    """PWS-quality ``Q(F) = -H(F)`` of a joint distribution (Definition 1)."""
    return -distribution.entropy()


def crowd_entropy(accuracy: float) -> float:
    """Per-task crowd entropy ``H(Crowd)`` (Definition 2, Equation 1).

    ``accuracy`` is the worker correctness probability ``Pc ∈ [0.5, 1]``.
    ``Pc = 1`` gives zero entropy (a perfectly reliable crowd).
    """
    validate_accuracy(accuracy, "crowd accuracy")
    if accuracy == 1.0:
        return 0.0
    wrong = 1.0 - accuracy
    return -accuracy * math.log2(accuracy) - wrong * math.log2(wrong)


def utility_gain(prior: JointDistribution, posterior: JointDistribution) -> float:
    """Realised utility improvement ``ΔQ = Q(posterior) − Q(prior)``.

    This is the *observed* gain after merging a concrete answer set; the
    selection algorithms maximise its expectation instead.
    """
    return pws_quality(posterior) - pws_quality(prior)


def expected_posterior_entropy(
    task_entropy: float, num_tasks: int, accuracy: float, prior_entropy: float
) -> float:
    """Expected posterior entropy ``H(F | T)`` implied by the paper's identity.

    Section III-B shows ``H(F) − H(F|T) = H(T) − H(T|F)`` with
    ``H(T|F) = k · H(Crowd)``.  Rearranging gives the expected entropy of the
    fact set after observing the answers to ``num_tasks`` tasks whose answer
    distribution has entropy ``task_entropy``.
    """
    return prior_entropy - (task_entropy - num_tasks * crowd_entropy(accuracy))


def expected_utility_gain(task_entropy: float, num_tasks: int, accuracy: float) -> float:
    """Expected utility gain ``ΔQ = H(T) − k·H(Crowd)`` of asking a task set."""
    return task_entropy - num_tasks * crowd_entropy(accuracy)
