"""Unit tests for the timing harness and report formatting."""

import pytest

from repro.core.distribution import JointDistribution
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.timing import measure_selection_times, rows_as_table
from repro.exceptions import CrowdFusionError


def small_distributions():
    return [
        JointDistribution.independent({f"f{i}": 0.4 + 0.05 * i for i in range(5)}),
        JointDistribution.independent({f"g{i}": 0.5 for i in range(4)}),
    ]


class TestMeasureSelectionTimes:
    def test_rows_cover_selector_k_grid(self):
        rows = measure_selection_times(
            small_distributions(), selectors=["greedy", "greedy_prune_pre"], ks=[1, 2]
        )
        assert len(rows) == 4
        assert {(row.selector, row.k) for row in rows} == {
            ("greedy", 1),
            ("greedy", 2),
            ("greedy_prune_pre", 1),
            ("greedy_prune_pre", 2),
        }

    def test_mean_seconds_positive(self):
        rows = measure_selection_times(small_distributions(), ["greedy"], [1])
        assert rows[0].mean_seconds > 0.0
        assert rows[0].runs == 2

    def test_skip_caps_expensive_selectors(self):
        rows = measure_selection_times(
            small_distributions(), selectors=["opt", "greedy"], ks=[1, 2, 3],
            skip={"opt": 1},
        )
        opt_ks = [row.k for row in rows if row.selector == "opt"]
        greedy_ks = [row.k for row in rows if row.selector == "greedy"]
        assert opt_ks == [1]
        assert greedy_ks == [1, 2, 3]

    def test_repeats_multiply_runs(self):
        rows = measure_selection_times(small_distributions(), ["greedy"], [1], repeats=3)
        assert rows[0].runs == 6

    def test_requires_distributions(self):
        with pytest.raises(CrowdFusionError):
            measure_selection_times([], ["greedy"], [1])

    def test_invalid_repeats_rejected(self):
        with pytest.raises(CrowdFusionError):
            measure_selection_times(small_distributions(), ["greedy"], [1], repeats=0)

    def test_rows_as_table_pivot(self):
        rows = measure_selection_times(small_distributions(), ["greedy", "random"], [1, 2])
        table = rows_as_table(rows)
        assert set(table) == {1, 2}
        assert set(table[1]) == {"greedy", "random"}


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["k", "time"], [[1, 0.5], [10, 12.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "k" in lines[0] and "time" in lines[0]
        assert "12.2500" in lines[-1]

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(CrowdFusionError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(CrowdFusionError):
            format_table([], [])

    def test_non_float_cells_stringified(self):
        text = format_table(["name", "value"], [["greedy", 3]])
        assert "greedy" in text
        assert "3" in text


class TestFormatSeries:
    def test_named_series_rendering(self):
        text = format_series("Approx. Pc=0.8", [(0, 0.5), (60, 0.81)])
        assert text.startswith("Approx. Pc=0.8:")
        assert "(60, 0.8100)" in text

    def test_empty_series_rejected(self):
        with pytest.raises(CrowdFusionError):
            format_series("empty", [])
