"""Session bookkeeping: addressable ids, budgets and per-tenant runtime state.

The registry is the service's source of truth for "which sessions exist".
Sessions live in a :class:`~repro.core.selection.session.SessionPool` (the
same substrate the batch experiment runner uses), and every session carries
a :class:`SessionRecord` with the service-level state the core runtime
doesn't know about: the remaining task budget, the per-tenant selector
instance, and the generation-keyed response caches.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.core.selection import available_selectors, get_selector
from repro.core.selection.base import TaskSelector
from repro.core.selection.session import RefinementSession, SessionPool
from repro.exceptions import BudgetError, CrowdFusionError, SelectionError
from repro.service.api import (
    BudgetExhaustedError,
    UnknownSessionError,
    ValidationFailedError,
)
from repro.service.batching import EngineGroup

#: Generation key of a cached response: ``(reweights, channel_swaps)`` of the
#: session's engine.  Both counters only ever grow, and between them they
#: cover every event that changes selection scores — a Bayesian merge bumps
#: ``reweights``, a re-calibration channel swap bumps ``channel_swaps`` — so
#: a cache entry is valid iff its key matches the engine's current pair.
Generation = Tuple[int, int]


@dataclass
class SessionRecord:
    """One tenant's session plus the service-level state around it."""

    session_id: str
    session: RefinementSession
    selector: TaskSelector
    selector_name: str
    budget: int
    spent: int = 0
    #: ``(generation, batch) → SelectionReply`` — selection is deterministic
    #: given the posterior and channel, so replies are reusable until either
    #: changes.
    selection_cache: Dict[Tuple[Generation, int], Any] = field(default_factory=dict)
    #: ``generation → PosteriorView``.
    posterior_cache: Dict[Generation, Any] = field(default_factory=dict)
    #: ``time.monotonic()`` of the last request that touched this session —
    #: the LRU/TTL eviction clock.
    last_used: float = field(default_factory=time.monotonic)
    #: Whether state changed since the last snapshot was written.
    dirty: bool = False
    #: ``time.monotonic()`` of the last snapshot write (debounce anchor).
    last_snapshot_at: float = 0.0

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    def generation(self) -> Generation:
        """The engine's current ``(reweights, channel_swaps)`` pair."""
        engine = self.session.engine
        return (engine.reweights, engine.channel_swaps)

    def invalidate_caches(self) -> None:
        """Drop every cached reply (called after merges and channel swaps).

        Strictly, stale generations could never be served again — the key
        pair only grows — but dropping them keeps the per-session cache at
        one generation's worth of entries instead of the whole history.
        """
        self.selection_cache.clear()
        self.posterior_cache.clear()

    def charge(self, tasks: int) -> None:
        """Debit ``tasks`` from the budget, or refuse the whole batch."""
        if tasks > self.remaining:
            raise BudgetExhaustedError(
                f"session {self.session_id} has {self.remaining} of "
                f"{self.budget} budget left; cannot accept {tasks} answers"
            )
        self.spent += tasks


class SessionRegistry:
    """Creates, resolves, snapshots, restores and evicts the service's sessions.

    With ``snapshot_dir`` set, the registry is durable: every session's
    posterior, channel state and budget ledger are snapshotted to disk
    (after merges, debounced by ``snapshot_debounce_s``; always on eviction
    and shutdown), a restarted registry picks the snapshots back up lazily on
    first access, and the eviction policy (``max_sessions`` LRU cap,
    ``idle_ttl_s`` idle timeout) moves sessions *to disk* instead of dropping
    them — an evicted tenant's next request revives the session
    transparently.  Both eviction knobs require ``snapshot_dir``; evicting
    without somewhere durable to put the session would silently destroy
    tenant state.
    """

    def __init__(
        self,
        group: EngineGroup,
        kernel: str = "auto",
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        idle_ttl_s: Optional[float] = None,
        snapshot_debounce_s: float = 1.0,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise ValidationFailedError(
                f"max_sessions must be at least 1, got {max_sessions}"
            )
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValidationFailedError(
                f"idle_ttl_s must be positive, got {idle_ttl_s}"
            )
        if (max_sessions is not None or idle_ttl_s is not None) and snapshot_dir is None:
            raise ValidationFailedError(
                "max_sessions / idle_ttl_s eviction requires snapshot_dir: "
                "evicting sessions without durable snapshots would drop "
                "tenant state"
            )
        self._group = group
        # Every tenant's engine is built on the same kernel tier — the tier is
        # a service-deployment property (is numba installed in this image?),
        # not a per-session choice.
        self._kernel = kernel
        self._pool = SessionPool()
        self._records: Dict[str, SessionRecord] = {}
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self._snapshot_debounce_s = snapshot_debounce_s
        #: Durability counters spliced into the service metrics payload.
        self.counters: Dict[str, int] = {
            "snapshots_written": 0,
            "evictions": 0,
            "revivals": 0,
            "restored_available": 0,
        }
        self._store = None
        start_id = 1
        if snapshot_dir is not None:
            # Imported lazily so registries without durability never touch
            # the orchestration substrate.
            from repro.service.persistence import SessionSnapshotStore

            self._store = SessionSnapshotStore(snapshot_dir)
            stored = self._store.stored_ids()
            self.counters["restored_available"] = len(stored)
            # Resume the id counter past every stored session so revived and
            # fresh sessions can never collide.
            for session_id in stored:
                try:
                    start_id = max(start_id, int(session_id.split("-")[-1]) + 1)
                except ValueError:
                    continue
        self._ids = itertools.count(start_id)

    def __len__(self) -> int:
        return len(self._records)

    def create(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        budget: int,
        selector: str = "greedy_prune_pre",
    ) -> SessionRecord:
        """Register a new session attached to one of the shared pools."""
        if budget <= 0:
            raise ValidationFailedError(f"budget must be positive, got {budget}")
        if selector not in available_selectors():
            raise ValidationFailedError(
                f"unknown selector {selector!r}; expected one of "
                f"{available_selectors()}"
            )
        session_id = f"s-{next(self._ids):06d}"
        try:
            session = self._pool.add(
                session_id,
                distribution,
                channel,
                runtime=RuntimeOptions(kernel=self._kernel),
                evaluator_pool=self._group.acquire(),
            )
        except (BudgetError, SelectionError, CrowdFusionError) as error:
            raise ValidationFailedError(f"cannot create session: {error}") from None
        record = SessionRecord(
            session_id=session_id,
            session=session,
            selector=get_selector(selector),
            selector_name=selector,
            budget=budget,
            dirty=self._store is not None,
        )
        self._records[session_id] = record
        if self._store is not None:
            # Durable from birth: a crash before the first merge must not
            # lose the session's existence (prior, budget, selector).
            self.snapshot(record)
        return record

    def get(self, session_id: str) -> SessionRecord:
        record = self._records.get(session_id)
        if record is None:
            record = self._revive(session_id)
        record.last_used = time.monotonic()
        return record

    def peek(self, session_id: str) -> Optional[SessionRecord]:
        """The live record, without touching the LRU clock or reviving."""
        return self._records.get(session_id)

    def remove(self, session_id: str) -> SessionRecord:
        """Evict one session, releasing its shared-pool slot immediately."""
        record = self.get(session_id)
        del self._records[session_id]
        # SessionPool.remove closes the session, detaching its engine from
        # the shared evaluator pool — the worker-leak fix this service needs.
        self._pool.remove(session_id)
        if self._store is not None:
            # A deliberate close is the end of the session's life: its
            # snapshot must not resurrect it after a restart.
            self._store.delete(session_id)
        return record

    def session_ids(self) -> Tuple[str, ...]:
        return tuple(self._records)

    # -- durability --------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self._store is not None

    def stored_ids(self) -> Tuple[str, ...]:
        """Ids restorable from disk (evicted or from a previous process)."""
        if self._store is None:
            return ()
        return tuple(self._store.stored_ids())

    def _revive(self, session_id: str) -> SessionRecord:
        """Rebuild an evicted/restarted session from its disk snapshot."""
        payload = self._store.load(session_id) if self._store is not None else None
        if payload is None:
            raise UnknownSessionError(f"no session {session_id!r}")
        from repro.service.persistence import decode_snapshot

        distribution, channel = decode_snapshot(payload)
        try:
            session = self._pool.add(
                session_id,
                distribution,
                channel,
                runtime=RuntimeOptions(kernel=self._kernel),
                evaluator_pool=self._group.acquire(),
            )
        except (BudgetError, SelectionError, CrowdFusionError) as error:
            raise ValidationFailedError(
                f"cannot revive session {session_id}: {error}"
            ) from None
        # The snapshot stored the *posterior*; it is the revived session's
        # prior, so only the merge counter needs restoring.
        session.restore_rounds_merged(int(payload["rounds_merged"]))
        record = SessionRecord(
            session_id=session_id,
            session=session,
            selector=get_selector(payload["selector"]),
            selector_name=payload["selector"],
            budget=int(payload["budget"]),
            spent=int(payload["spent"]),
            last_snapshot_at=time.monotonic(),
        )
        self._records[session_id] = record
        self.counters["revivals"] += 1
        return record

    def note_merged(self, record: SessionRecord) -> None:
        """Mark post-merge state dirty and snapshot it, debounced.

        Called from the merge executor hop (one drainer per session, so the
        record is not concurrently mutated).  The debounce window bounds
        snapshot I/O for chatty tenants; eviction and shutdown flush
        unconditionally, so debouncing only ever delays — never loses — a
        snapshot while the process is alive.
        """
        record.dirty = True
        if self._store is None:
            return
        now = time.monotonic()
        if now - record.last_snapshot_at >= self._snapshot_debounce_s:
            self.snapshot(record)

    def snapshot(self, record: SessionRecord) -> None:
        """Write one session's snapshot now (no-op without a store)."""
        if self._store is None:
            return
        self._store.save(
            record.session_id,
            record.session,
            record.selector_name,
            record.budget,
            record.spent,
        )
        record.dirty = False
        record.last_snapshot_at = time.monotonic()
        self.counters["snapshots_written"] += 1

    def evict(self, session_id: str) -> None:
        """Move one session to disk: flush its snapshot, then close it."""
        record = self._records.get(session_id)
        if record is None:
            return
        if self._store is None:
            raise ValidationFailedError(
                "cannot evict sessions without a snapshot_dir"
            )
        self.snapshot(record)
        del self._records[session_id]
        self._pool.remove(session_id)
        self.counters["evictions"] += 1

    def lru_candidate(self, exclude: Tuple[str, ...] = ()) -> Optional[str]:
        """The least-recently-used live session id (eviction victim)."""
        candidates = [
            record
            for session_id, record in self._records.items()
            if session_id not in exclude
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda record: record.last_used).session_id

    def at_capacity(self) -> bool:
        return self.max_sessions is not None and len(self._records) >= self.max_sessions

    def idle_candidates(self, now: Optional[float] = None) -> List[str]:
        """Live sessions idle past ``idle_ttl_s`` (oldest first)."""
        if self.idle_ttl_s is None:
            return []
        now = time.monotonic() if now is None else now
        idle = [
            record
            for record in self._records.values()
            if now - record.last_used >= self.idle_ttl_s
        ]
        idle.sort(key=lambda record: record.last_used)
        return [record.session_id for record in idle]

    def close(self) -> None:
        """Flush snapshots, evict every session, shut the pools down."""
        if self._store is not None:
            for record in self._records.values():
                if record.dirty:
                    self.snapshot(record)
        self._records.clear()
        self._pool.close()
        self._group.close()
