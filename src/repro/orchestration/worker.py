"""Shard worker processes for the durable experiment orchestrator.

A shard is a fork-context child process that loops: receive an entity index
over its pipe, run that entity's complete refinement trajectory with the
shared :func:`~repro.evaluation.experiment.run_entity_trajectory` (identical
seed derivation to the serial loop and the in-memory fan-out), reply with
the JSON-ready trajectory payload, repeat until the parent sends ``None``.

The work tuple (problems, config, budget overrides) is published through the
module global :data:`_SHARD_CONTEXT` immediately before the fork — children
inherit it through copy-on-write memory, only indices and result payloads
cross the pipe.  Shards are daemonic, run sessions serially (no nested
pools), and hit the ``shard_entity`` fault point before every entity so the
chaos suite can kill or fail them at a precise position.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Tuple

from repro.evaluation.experiment import (
    EntityProblem,
    EntityTrajectory,
    ExperimentConfig,
    TrajectoryRound,
    run_entity_trajectory,
)
from repro.testing import faults

#: Work published to shard processes before the fork:
#: ``(problems, config, budget_overrides)``.
_SHARD_CONTEXT: Optional[
    Tuple[List[EntityProblem], ExperimentConfig, Dict[str, int]]
] = None


def trajectory_to_payload(trajectory: EntityTrajectory) -> Dict[str, Any]:
    """JSON-ready dict for one trajectory (floats round-trip exactly)."""
    return {
        "initial_cost": trajectory.initial_cost,
        "initial_utility": trajectory.initial_utility,
        "initial_labels": dict(trajectory.initial_labels),
        "rounds": [
            {
                "tasks_asked": record.tasks_asked,
                "utility": record.utility,
                "labels": dict(record.labels),
            }
            for record in trajectory.rounds
        ],
    }


def trajectory_from_payload(payload: Dict[str, Any]) -> EntityTrajectory:
    """Inverse of :func:`trajectory_to_payload`."""
    return EntityTrajectory(
        initial_cost=int(payload["initial_cost"]),
        initial_utility=float(payload["initial_utility"]),
        initial_labels={k: bool(v) for k, v in payload["initial_labels"].items()},
        rounds=[
            TrajectoryRound(
                tasks_asked=int(record["tasks_asked"]),
                utility=float(record["utility"]),
                labels={k: bool(v) for k, v in record["labels"].items()},
            )
            for record in payload["rounds"]
        ],
    )


def shard_main(connection: "multiprocessing.connection.Connection") -> None:
    """Entry point of one shard process: serve entity indices until ``None``.

    Replies are ``("ok", index, payload)`` or ``("error", index, message)``;
    unexpected errors are reported rather than crashing the shard, so one
    poison entity costs one reply, not one process.  The fault point fires
    *before* the trajectory runs — a killed shard therefore dies with the
    entity undone, which is exactly the in-flight state resume must handle.
    """
    assert _SHARD_CONTEXT is not None, "shard forked without published context"
    problems, config, budget_overrides = _SHARD_CONTEXT
    while True:
        index = connection.recv()
        if index is None:
            connection.close()
            return
        try:
            faults.fire("shard_entity", index=index)
            trajectory = run_entity_trajectory(
                problems[index], index, config, budget_overrides
            )
        except BaseException as error:  # noqa: BLE001 - reported to the parent
            connection.send(("error", index, f"{type(error).__name__}: {error}"))
        else:
            connection.send(("ok", index, trajectory_to_payload(trajectory)))
