"""Command-line interface for the CrowdFusion reproduction.

Five subcommands cover the common workflows without writing any Python:

* ``crowdfusion quickstart`` — the paper's running example end to end;
* ``crowdfusion fusion`` — compare the machine-only fusion initialisers on a
  synthetic Book corpus;
* ``crowdfusion experiment`` — run a budgeted crowd-refinement experiment and
  print the quality-vs-cost curve;
* ``crowdfusion serve`` — run the multi-tenant refinement service (sessions
  over a JSON-lines TCP API, shared persistent worker pools);
* ``crowdfusion timing`` — measure one-round selection times (Table V style).

Every batch command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core import CrowdFusionEngine, CrowdModel, pws_quality
from repro.core.kernels import KERNEL_CHOICES
from repro.core.runtime import RuntimeOptions
from repro.core.selection import available_selectors, get_selector
from repro.crowdsim import SimulatedPlatform, WorkerPool
from repro.datasets import (
    BookCorpusConfig,
    generate_book_corpus,
    running_example_distribution,
    running_example_facts,
)
from repro.evaluation import (
    ExperimentConfig,
    allocate_budget,
    build_problems,
    format_series,
    format_table,
    measure_selection_times,
    run_quality_experiment,
)
from repro.evaluation.experiment import CROWD_MODEL_KINDS
from repro.exceptions import CrowdFusionError
from repro.fusion import BayesianVote, MajorityVote, ModifiedCRH, TruthFinder
from repro.fusion.pipeline import accuracy_against_gold

_FUSION_METHODS = {
    "majority": MajorityVote,
    "crh": ModifiedCRH,
    "truthfinder": TruthFinder,
    "bayesian": BayesianVote,
}


def _bounded_int(minimum: int, requirement: str):
    """An argparse type enforcing an integer lower bound with a clear message."""

    def parse(text: str) -> int:
        try:
            value = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
        if value < minimum:
            raise argparse.ArgumentTypeError(f"must be {requirement}, got {value}")
        return value

    return parse


_positive_int = _bounded_int(1, "a positive integer")
_nonnegative_int = _bounded_int(0, "non-negative")


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--books", type=int, default=30, help="number of synthetic books")
    parser.add_argument("--sources", type=int, default=16, help="number of synthetic sources")
    parser.add_argument("--seed", type=int, default=7, help="corpus / experiment RNG seed")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Every flag that *defines* a sweep (fingerprint-relevant).

    Shared between ``experiment`` and ``shard-worker``: a remote worker must
    rebuild the exact same problems, config and budget allocation from these
    flags, and the coordinator's fingerprint digest catches a mismatch.
    """
    _add_corpus_arguments(parser)
    parser.add_argument(
        "--selector", default="greedy_prune_pre", choices=available_selectors(),
        help="task-selection algorithm",
    )
    parser.add_argument("--fusion", default="crh", choices=sorted(_FUSION_METHODS),
                        help="machine-only initialiser")
    parser.add_argument("--k", type=int, default=2, help="tasks per round")
    parser.add_argument("--budget", type=int, default=20, help="tasks per book")
    parser.add_argument("--pc", type=float, default=0.85, help="true worker accuracy")
    parser.add_argument("--assumed-pc", type=float, default=None,
                        help="accuracy assumed by the system (defaults to --pc)")
    parser.add_argument("--max-facts", type=int, default=10,
                        help="cap on facts per book")
    parser.add_argument(
        "--allocation", default="fixed", choices=["fixed", "uniform", "proportional", "entropy"],
        help="how the global budget is distributed across books",
    )
    parser.add_argument(
        "--crowd-model", default="uniform", choices=list(CROWD_MODEL_KINDS),
        help="channel model assumed by selection and merging: one shared Pc, "
        "per-fact difficulty-adjusted channels, or a calibrated pre-test estimate",
    )
    parser.add_argument(
        "--recalibrate", action="store_true",
        help="adaptively re-estimate per-fact channel accuracies from "
        "answer/posterior agreement as rounds accumulate",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="shard candidate scans over N worker processes (greedy-family "
        "selectors; default: no parallelism)",
    )
    parser.add_argument(
        "--parallel-threshold", type=_nonnegative_int, default=None, metavar="WORK",
        help="minimum scan size (candidates x support rows) before the worker "
        "pool is used; smaller scans always run serially",
    )
    parser.add_argument(
        "--persistent-pool", action="store_true",
        help="keep one worker pool alive per entity for the whole run "
        "(posteriors travel through a shared-memory snapshot ring instead of "
        "re-forking after every merge); requires --workers and a platform "
        "with the fork start method",
    )
    parser.add_argument(
        "--parallel-entities", type=_positive_int, default=None, metavar="N",
        help="fan whole entities out across N processes (each runs one "
        "entity's complete refinement trajectory; curves are identical to "
        "the serial loop); mutually exclusive with --workers",
    )
    parser.add_argument(
        "--kernel", default="auto", choices=list(KERNEL_CHOICES),
        help="entropy kernel tier: 'auto' uses the numba-compiled kernels "
        "when numba is importable and falls back to numpy otherwise; "
        "'reference' runs the uncompiled kernel bodies (debugging)",
    )


def _make_corpus(args: argparse.Namespace):
    return generate_book_corpus(
        BookCorpusConfig(
            num_books=args.books,
            num_sources=args.sources,
            max_sources_per_book=min(12, args.sources),
            seed=args.seed,
        )
    )


def _cmd_quickstart(args: argparse.Namespace) -> int:
    facts = running_example_facts()
    prior = running_example_distribution()
    crowd = CrowdModel(args.pc)
    print("Facts (Table I):")
    rows = [[fact.fact_id, fact.describe(), prior.marginal(fact.fact_id)] for fact in facts]
    print(format_table(["id", "statement", "P(true)"], rows, float_format="{:.2f}"))
    selection = get_selector("greedy_prune_pre").select(prior, crowd, k=2)
    print(f"\nBest 2 tasks: {selection.task_ids}  H(T) = {selection.objective:.3f}")

    gold = {"f1": True, "f2": True, "f3": True, "f4": False}
    platform = SimulatedPlatform(
        ground_truth=gold, workers=WorkerPool.homogeneous(10, args.pc, seed=args.seed)
    )
    engine = CrowdFusionEngine(
        get_selector("greedy_prune_pre"), crowd, budget=args.budget, tasks_per_round=2
    )
    result = engine.run(prior, platform)
    print(
        f"Utility {pws_quality(prior):.3f} -> {result.final_utility:.3f} "
        f"after {result.total_cost} tasks; labels {result.predicted_labels()}"
    )
    return 0


def _cmd_fusion(args: argparse.Namespace) -> int:
    corpus = _make_corpus(args)
    print(
        f"Corpus: {len(corpus.books)} books, {len(corpus.database)} claims, "
        f"raw correctness {corpus.raw_correctness():.3f}"
    )
    rows = []
    for name, factory in _FUSION_METHODS.items():
        result = factory().run(corpus.database)
        rows.append(
            [name, accuracy_against_gold(result, corpus.gold), result.iterations]
        )
    print(format_table(["method", "accuracy vs gold", "iterations"], rows,
                       float_format="{:.3f}"))
    return 0


def _parse_endpoint(text: str) -> tuple:
    """Split a ``HOST:PORT`` flag value; loud on anything else."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a HOST:PORT endpoint"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{port!r} is not a port number")


def _sweep_setup(args: argparse.Namespace):
    """Problems, config and budget overrides of one sweep, from CLI flags.

    Shared by ``experiment`` (in any mode) and ``shard-worker``: a remote
    worker rebuilds the identical sweep from its own flags, and the
    coordinator's fingerprint digest verifies it got them right.
    """
    corpus = _make_corpus(args)
    problems = build_problems(
        corpus.database,
        corpus.gold,
        _FUSION_METHODS[args.fusion](),
        difficulties=corpus.difficulties,
        max_facts_per_entity=args.max_facts,
    )
    config = ExperimentConfig(
        selector=args.selector,
        k=args.k,
        budget_per_entity=args.budget,
        worker_accuracy=args.pc,
        assumed_accuracy=args.assumed_pc,
        use_difficulties=True,
        seed=args.seed,
        crowd_model=args.crowd_model,
        runtime=RuntimeOptions(
            workers=args.workers,
            parallel_threshold=args.parallel_threshold,
            persistent_pool=args.persistent_pool,
            recalibrate=args.recalibrate,
            parallel_entities=args.parallel_entities,
            kernel=args.kernel,
        ),
    )
    budgets = None
    if args.allocation != "fixed":
        total = args.budget * len(problems)
        budgets = allocate_budget(problems, total, strategy=args.allocation)
    return problems, config, budgets


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        problems, config, budgets = _sweep_setup(args)
    except CrowdFusionError as error:
        # Bad flag combinations and missing platform support surface as one
        # clear line; failures past this point keep their tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = None
    if args.coordinator is not None:
        # Multi-host mode: lease entity ranges to shard workers over TCP.
        from repro.evaluation.reporting import CurveStream
        from repro.orchestration.cluster import ClusterConfig, run_cluster_experiment

        if args.run_dir is None:
            print(
                "error: --coordinator requires --run-dir (the lease ledger "
                "and worker journals live there)",
                file=sys.stderr,
            )
            return 2
        host, port = args.coordinator

        def announce(bound_port: int) -> None:
            # The smoke harness and remote operators parse this line.
            print(f"coordinator listening on {host}:{bound_port}", flush=True)

        try:
            report = run_cluster_experiment(
                problems,
                config,
                ClusterConfig(
                    run_dir=args.run_dir,
                    host=host,
                    port=port,
                    lease_ttl_s=args.lease_ttl_s,
                    heartbeat_s=args.heartbeat_s,
                    lease_entities=args.lease_entities,
                    max_attempts=args.max_attempts,
                    resume=args.resume,
                    local_workers=args.local_workers,
                ),
                budgets=budgets,
                stream=CurveStream(sys.stdout) if args.curve else None,
                on_listening=announce,
            )
        except CrowdFusionError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        result = report.result
    elif args.run_dir is not None:
        # Durable orchestration: journalled, checkpointed, resumable.  Lazy
        # import keeps plain in-memory runs free of the orchestration stack.
        from repro.evaluation.reporting import CurveStream
        from repro.orchestration import OrchestratorConfig, run_checkpointed_experiment

        try:
            report = run_checkpointed_experiment(
                problems,
                config,
                OrchestratorConfig(
                    run_dir=args.run_dir,
                    shards=args.shards,
                    max_attempts=args.max_attempts,
                    resume=args.resume,
                ),
                budgets=budgets,
                stream=CurveStream(sys.stdout) if args.curve else None,
            )
        except CrowdFusionError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        result = report.result
    else:
        result = run_quality_experiment(problems, config, budgets=budgets)
    extras = ""
    if args.workers is not None:
        extras += f", workers {args.workers}"
        if args.persistent_pool:
            extras += " (persistent pool)"
    if args.parallel_entities is not None:
        extras += f", {args.parallel_entities} entity workers"
    if args.recalibrate:
        extras += ", recalibrating"
    if args.kernel != "auto":
        extras += f", kernel {args.kernel}"
    if report is not None:
        extras += (
            f", run dir {report.run_dir} ({report.completed} done, "
            f"{report.resumed} resumed"
        )
        if report.quarantined:
            extras += f", {len(report.quarantined)} quarantined"
        extras += ")"
        stats = getattr(report, "stats", None)
        if stats is not None:
            extras += (
                f", cluster epoch {stats.epoch} ({stats.leases_granted} leases, "
                f"{stats.leases_expired} expired, {stats.results_rejected} fenced)"
            )
    print(
        f"Selector {args.selector}, k={args.k}, budget {args.budget}/book, "
        f"Pc={args.pc} (assumed {config.model_accuracy}), allocation {args.allocation}, "
        f"crowd model {args.crowd_model}{extras}"
    )
    rows = [
        ["initial", result.initial_point.cost, result.initial_point.f1,
         result.initial_point.utility],
        ["final", result.final_point.cost, result.final_point.f1,
         result.final_point.utility],
    ]
    print(format_table(["stage", "cost", "F1", "utility"], rows, float_format="{:.3f}"))
    if args.curve and report is None:
        # (With --run-dir the CurveStream already printed each point as it
        # was assembled.)
        print(format_series("F1", list(zip(result.costs(), result.f1_series())), 3))
        print(format_series("utility", list(zip(result.costs(), result.utility_series())), 2))
    return 0


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    # Imported lazily: plain batch commands never touch the cluster stack.
    from repro.orchestration.cluster_worker import run_shard_worker

    try:
        problems, config, budgets = _sweep_setup(args)
    except CrowdFusionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    host, port = args.connect
    worker_id = args.worker_id or f"worker-{os.getpid()}"
    try:
        summary = run_shard_worker(
            problems,
            config,
            dict(budgets or {}),
            host,
            port,
            worker_id,
            reconnect_window_s=args.reconnect_window_s,
        )
    except CrowdFusionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"worker {summary.worker} done: {summary.entities_ok} entities ok, "
        f"{summary.entities_failed} failed, {summary.leases_served} leases, "
        f"{summary.reconnects} reconnects"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the three batch subcommands never pay for the asyncio
    # service stack.
    import asyncio

    from repro.service.server import RefinementService
    from repro.service.transport import bound_port, serve

    try:
        runtime = RuntimeOptions(
            workers=args.workers,
            parallel_threshold=args.parallel_threshold,
            dispatch_timeout_ms=args.dispatch_timeout_ms,
            max_rebuilds=args.max_rebuilds,
            kernel=args.kernel,
        )
    except CrowdFusionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def run() -> None:
        service = RefinementService(
            runtime,
            pools=args.pools,
            max_pending=args.max_pending,
            state_dir=args.state_dir,
            max_sessions=args.max_sessions,
            idle_ttl_s=args.idle_ttl_s,
        )
        server = await serve(service, host=args.host, port=args.port)
        workers = f", {args.workers} workers x {args.pools} pools" if args.workers else ""
        print(
            f"refinement service listening on {args.host}:{bound_port(server)}"
            f"{workers} (Ctrl-C to stop)"
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
            pass
        finally:
            server.close()
            await server.wait_closed()
            await service.shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        print("\nservice stopped")
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    corpus = _make_corpus(args)
    problems = build_problems(
        corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=args.max_facts
    )
    distributions = [problem.prior for problem in problems[: args.entities]]
    rows = measure_selection_times(
        distributions,
        selectors=args.selectors,
        ks=args.k,
        accuracy=args.pc,
        skip={"opt": args.opt_cap},
    )
    print(
        format_table(
            ["selector", "k", "mean seconds", "runs"],
            [[row.selector, row.k, row.mean_seconds, row.runs] for row in rows],
            float_format="{:.5f}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="crowdfusion",
        description="CrowdFusion (ICDE 2017) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser("quickstart", help="run the paper's running example")
    quickstart.add_argument("--pc", type=float, default=0.8, help="crowd accuracy")
    quickstart.add_argument("--budget", type=int, default=6, help="task budget")
    quickstart.add_argument("--seed", type=int, default=6, help="worker RNG seed")
    quickstart.set_defaults(handler=_cmd_quickstart)

    fusion = subparsers.add_parser("fusion", help="compare machine-only fusion methods")
    _add_corpus_arguments(fusion)
    fusion.set_defaults(handler=_cmd_fusion)

    experiment = subparsers.add_parser("experiment", help="run a crowd-refinement experiment")
    _add_sweep_arguments(experiment)
    experiment.add_argument("--curve", action="store_true", help="print the full quality curve")
    experiment.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="run the sweep through the durable orchestrator: shard entity "
        "trajectories across worker processes, journal every completed "
        "entity to DIR and checkpoint atomically, so the sweep survives "
        "kills and resumes with --resume",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="continue a previous --run-dir sweep: replay its journal, keep "
        "completed entities verbatim and re-run only the rest (curves are "
        "bit-identical to an undisturbed run)",
    )
    experiment.add_argument(
        "--shards", type=_positive_int, default=2, metavar="N",
        help="orchestrator worker processes (with --run-dir; default 2)",
    )
    experiment.add_argument(
        "--max-attempts", type=_positive_int, default=3, metavar="N",
        help="attempts per entity before the orchestrator quarantines it "
        "(with --run-dir; default 3)",
    )
    experiment.add_argument(
        "--coordinator", type=_parse_endpoint, default=None, metavar="HOST:PORT",
        help="run as a multi-host cluster coordinator bound to HOST:PORT "
        "(port 0 picks a free one, printed on startup): lease contiguous "
        "entity ranges to shard workers over TCP with heartbeat expiry and "
        "fencing epochs; requires --run-dir, honours --resume",
    )
    experiment.add_argument(
        "--local-workers", type=_nonnegative_int, default=0, metavar="N",
        help="with --coordinator: fork N loopback shard-worker subprocesses "
        "so a single machine can run the whole cluster (default 0: wait "
        "for remote workers)",
    )
    experiment.add_argument(
        "--lease-ttl-s", type=float, default=10.0, metavar="SECONDS",
        help="with --coordinator: fence a lease with no heartbeat for this "
        "long and reassign its remaining entities (default 10)",
    )
    experiment.add_argument(
        "--heartbeat-s", type=float, default=2.0, metavar="SECONDS",
        help="with --coordinator: heartbeat interval handed to workers; "
        "must be well under --lease-ttl-s (default 2)",
    )
    experiment.add_argument(
        "--lease-entities", type=_positive_int, default=4, metavar="N",
        help="with --coordinator: maximum contiguous entities per lease "
        "grant (default 4)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    shard_worker = subparsers.add_parser(
        "shard-worker",
        help="join a cluster sweep as a remote shard worker",
        description="Connect to a `crowdfusion experiment --coordinator` "
        "process and serve leased entity ranges.  The sweep-defining flags "
        "must match the coordinator's exactly (verified by fingerprint "
        "digest at the handshake).",
    )
    _add_sweep_arguments(shard_worker)
    shard_worker.add_argument(
        "--connect", type=_parse_endpoint, required=True, metavar="HOST:PORT",
        help="coordinator endpoint to join",
    )
    shard_worker.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="stable worker name (journals land in journal-NAME.jsonl on "
        "the coordinator; default: worker-<pid>)",
    )
    shard_worker.add_argument(
        "--reconnect-window-s", type=float, default=15.0, metavar="SECONDS",
        help="keep retrying a lost coordinator connection this long — "
        "rides out a coordinator restart (--resume) without leaking an "
        "orphan forever (default 15)",
    )
    shard_worker.set_defaults(handler=_cmd_shard_worker)

    serve = subparsers.add_parser(
        "serve", help="run the multi-tenant refinement service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 picks a free port)")
    serve.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="shard tenants' candidate scans over N worker processes per "
        "shared pool (default: serial scans)",
    )
    serve.add_argument(
        "--parallel-threshold", type=_nonnegative_int, default=None, metavar="WORK",
        help="minimum scan size (candidates x support rows) before a shared "
        "pool is used; smaller scans always run serially",
    )
    serve.add_argument(
        "--pools", type=_positive_int, default=1, metavar="N",
        help="number of shared evaluator pools tenants are multiplexed onto "
        "(resident processes = pools x workers, independent of session count)",
    )
    serve.add_argument(
        "--dispatch-timeout-ms", type=_positive_int, default=None, metavar="MS",
        help="wall-clock budget for one parallel dispatch before the pool "
        "supervisor declares it hung and rebuilds the pool (default: no "
        "timeout)",
    )
    serve.add_argument(
        "--max-rebuilds", type=_nonnegative_int, default=2, metavar="N",
        help="consecutive crashed dispatches the pool supervisor absorbs "
        "before the circuit breaker degrades the pool to serial scans "
        "(default: 2)",
    )
    serve.add_argument(
        "--kernel", default="auto", choices=list(KERNEL_CHOICES),
        help="entropy kernel tier for every tenant's engine (auto: compiled "
        "when numba is importable, numpy otherwise)",
    )
    serve.add_argument(
        "--max-pending", type=_positive_int, default=8, metavar="N",
        help="per-session request-queue bound; further requests fail fast "
        "with a 429-style error",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable session snapshots: posterior, channel state and budget "
        "are snapshotted to DIR (debounced after merges) and a restarted "
        "server revives sessions on their next request",
    )
    serve.add_argument(
        "--max-sessions", type=_positive_int, default=None, metavar="N",
        help="LRU cap on resident sessions (requires --state-dir): creating "
        "past the cap evicts the least-recently-used idle session to disk",
    )
    serve.add_argument(
        "--idle-ttl-s", type=float, default=None, metavar="SECONDS",
        help="evict sessions idle this long to disk (requires --state-dir); "
        "their next request revives them transparently",
    )
    serve.set_defaults(handler=_cmd_serve)

    timing = subparsers.add_parser("timing", help="measure one-round selection times")
    _add_corpus_arguments(timing)
    timing.add_argument("--selectors", nargs="+", default=["greedy", "greedy_prune_pre"],
                        help="selectors to time")
    timing.add_argument("--k", nargs="+", type=int, default=[1, 2, 3],
                        help="round sizes to sweep")
    timing.add_argument("--pc", type=float, default=0.8, help="crowd accuracy")
    timing.add_argument("--entities", type=int, default=5,
                        help="number of books to average over")
    timing.add_argument("--max-facts", type=int, default=12, help="cap on facts per book")
    timing.add_argument("--opt-cap", type=int, default=2,
                        help="largest k at which the brute-force selector is timed")
    timing.set_defaults(handler=_cmd_timing)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
