"""Exception hierarchy for the CrowdFusion reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`CrowdFusionError`, so callers can catch a single base class when they
want to distinguish library errors from programming errors.
"""

from __future__ import annotations


class CrowdFusionError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidDistributionError(CrowdFusionError):
    """A probability distribution is malformed.

    Raised for negative probabilities, an empty support, or a total mass
    that cannot be normalised (e.g. all zeros / NaN).
    """


class InvalidFactError(CrowdFusionError):
    """A fact triple or fact set is malformed (duplicate ids, empty fields)."""


class InvalidCrowdModelError(CrowdFusionError):
    """Crowd accuracy is outside the supported range ``[0.5, 1.0]``."""


class SelectionError(CrowdFusionError):
    """Task selection was asked to do something impossible.

    Examples: requesting more tasks than facts exist, an unknown selector
    name, or selecting from an empty fact set.
    """


class BudgetError(CrowdFusionError):
    """The engine was configured with a non-positive or exhausted budget."""


class QueryError(CrowdFusionError):
    """A query references facts of interest that are not in the fact set."""


class FusionError(CrowdFusionError):
    """A machine-only fusion method received inconsistent claim data."""


class PlatformError(CrowdFusionError):
    """The simulated crowdsourcing platform was used incorrectly.

    Examples: collecting answers for a batch that was never published, or
    publishing an empty batch of tasks.
    """


class DatasetError(CrowdFusionError):
    """A dataset generator or loader received invalid parameters."""


class OrchestrationError(CrowdFusionError):
    """A durable experiment run directory is unusable.

    Examples: the run directory is locked by a live orchestrator process,
    the manifest of an existing run does not match the sweep being resumed,
    or the journal is corrupt beyond the tolerated torn trailing line.
    """
