"""Durable service sessions: snapshot/restore, LRU cap and TTL eviction.

Runs :class:`RefinementService` in-process with a ``state_dir`` and pins the
durability contract: a restarted service serves ``get_posterior`` within
1e-12 of the pre-restart posterior (restored sessions keep their budget
ledger, selector and merge count), the ``max_sessions`` LRU cap and the
``idle_ttl_s`` sweeper evict idle sessions *to disk* — their next request
revives them transparently — and a deliberate close deletes the snapshot so
nothing resurrects.
"""

import asyncio

import pytest

from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.service import RefinementService
from repro.service.api import (
    UnknownSessionError,
    ValidationFailedError,
)
from repro.service.batching import EngineGroup
from repro.service.persistence import SessionSnapshotStore
from repro.service.registry import SessionRegistry

from tests.core.selection.test_persistent_pool import dense_distribution


def run(coroutine):
    return asyncio.run(coroutine)


def make_prior(seed=0):
    return dense_distribution(5, 24, seed=seed)


class TestRestartRestore:
    def test_posterior_survives_a_restart_within_1e12(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def before():
            async with RefinementService(
                state_dir=state_dir, snapshot_debounce_s=0.0
            ) as service:
                created = await service.create_session(
                    make_prior(), PerFactChannelModel(0.8, {"f1": 0.9}), budget=10
                )
                await service.post_answers(created.session_id, {"f1": True})
                await service.post_answers(
                    created.session_id, {"f2": False, "f3": True}
                )
                view = await service.get_posterior(created.session_id)
                return created.session_id, view

        session_id, view = run(before())

        async def after():
            async with RefinementService(state_dir=state_dir) as service:
                restored = await service.get_posterior(session_id)
                select = await service.select_next(session_id, batch=2)
                return restored, select

        restored, select = run(after())
        assert restored.rounds_merged == view.rounds_merged == 2
        assert set(restored.marginals) == set(view.marginals)
        for fact_id, marginal in view.marginals.items():
            assert abs(restored.marginals[fact_id] - marginal) < 1e-12
        assert abs(restored.utility - view.utility) < 1e-12
        # The restored session keeps working: budget carried over (3 of 10
        # spent on the two merges), selection runs on the revived engine.
        assert select.budget_remaining == 7
        assert select.task_ids

    def test_budget_ledger_and_selector_survive(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def before():
            async with RefinementService(
                state_dir=state_dir, snapshot_debounce_s=0.0
            ) as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=4, selector="greedy"
                )
                await service.post_answers(created.session_id, {"f1": True})
                return created.session_id

        session_id = run(before())

        async def after():
            async with RefinementService(state_dir=state_dir) as service:
                closed = await service.close_session(session_id)
                return closed

        closed = run(after())
        assert closed.rounds_merged == 1
        assert closed.budget_spent == 1

    def test_closed_sessions_do_not_resurrect(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def scenario():
            async with RefinementService(state_dir=state_dir) as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=5
                )
                await service.close_session(created.session_id)
                session_id = created.session_id
            async with RefinementService(state_dir=state_dir) as service:
                with pytest.raises(UnknownSessionError):
                    await service.get_posterior(session_id)

        run(scenario())

    def test_fresh_ids_never_collide_with_stored_sessions(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def before():
            async with RefinementService(state_dir=state_dir) as service:
                a = await service.create_session(make_prior(), CrowdModel(0.8), budget=5)
                b = await service.create_session(make_prior(), CrowdModel(0.8), budget=5)
                return {a.session_id, b.session_id}

        old_ids = run(before())

        async def after():
            async with RefinementService(state_dir=state_dir) as service:
                c = await service.create_session(make_prior(), CrowdModel(0.8), budget=5)
                return c.session_id

        assert run(after()) not in old_ids


class TestEviction:
    def test_lru_cap_evicts_to_disk_and_revives(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def scenario():
            async with RefinementService(
                state_dir=state_dir, max_sessions=2, snapshot_debounce_s=0.0
            ) as service:
                first = await service.create_session(
                    make_prior(0), CrowdModel(0.8), budget=6
                )
                await service.post_answers(first.session_id, {"f1": True})
                view = await service.get_posterior(first.session_id)
                second = await service.create_session(
                    make_prior(1), CrowdModel(0.8), budget=6
                )
                # ``first`` is the LRU victim of the third create.
                await service.get_posterior(second.session_id)
                third = await service.create_session(
                    make_prior(2), CrowdModel(0.8), budget=6
                )
                assert service.sessions_live == 2
                durability = service.metrics()["durability"]
                assert durability["evictions"] == 1
                # The evicted session revives from disk on its next request.
                revived = await service.get_posterior(first.session_id)
                assert revived.rounds_merged == 1
                for fact_id, marginal in view.marginals.items():
                    assert abs(revived.marginals[fact_id] - marginal) < 1e-12
                assert service.metrics()["durability"]["revivals"] == 1

        run(scenario())

    def test_idle_ttl_sweeper_evicts_and_revival_works(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def scenario():
            async with RefinementService(
                state_dir=state_dir, idle_ttl_s=0.1, snapshot_debounce_s=0.0
            ) as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                await service.post_answers(created.session_id, {"f1": True})
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if service.sessions_live == 0:
                        break
                assert service.sessions_live == 0, "idle session was not evicted"
                assert service.metrics()["durability"]["evictions"] == 1
                view = await service.get_posterior(created.session_id)
                assert view.rounds_merged == 1
                assert service.sessions_live == 1

        run(scenario())

    def test_eviction_requires_state_dir(self):
        with pytest.raises(ValidationFailedError, match="snapshot_dir"):
            SessionRegistry(EngineGroup(None), max_sessions=4)
        with pytest.raises(ValidationFailedError, match="snapshot_dir"):
            SessionRegistry(EngineGroup(None), idle_ttl_s=5.0)


class TestSnapshotStore:
    def test_version_gate(self, tmp_path):
        store = SessionSnapshotStore(str(tmp_path))
        from repro.orchestration.journal import atomic_write_json

        atomic_write_json(
            str(tmp_path / "s-000001.json"), {"version": 999, "session_id": "s-000001"}
        )
        with pytest.raises(ValidationFailedError, match="version"):
            store.load("s-000001")

    def test_stored_ids_and_delete(self, tmp_path):
        store = SessionSnapshotStore(str(tmp_path))
        from repro.orchestration.journal import atomic_write_json

        for name in ("s-000002", "s-000001"):
            atomic_write_json(
                str(tmp_path / f"{name}.json"), {"version": 1, "session_id": name}
            )
        assert store.stored_ids() == ["s-000001", "s-000002"]
        store.delete("s-000001")
        store.delete("s-000001")  # idempotent
        assert store.stored_ids() == ["s-000002"]
