"""Unit tests for JointDistribution."""

import math

import pytest

from repro.core.distribution import JointDistribution, entropy_of
from repro.exceptions import InvalidDistributionError, InvalidFactError


def two_fact_distribution():
    """P(f1,f2) with a known correlation structure."""
    return JointDistribution.from_assignments(
        ("f1", "f2"),
        {
            (False, False): 0.4,
            (False, True): 0.1,
            (True, False): 0.1,
            (True, True): 0.4,
        },
    )


class TestConstruction:
    def test_normalises_by_default(self):
        dist = JointDistribution(("a",), {0: 2.0, 1: 6.0})
        assert dist.probability(0) == pytest.approx(0.25)
        assert dist.probability(1) == pytest.approx(0.75)

    def test_unnormalised_rejected_when_normalise_false(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {0: 0.3, 1: 0.3}, normalise=False)

    def test_normalised_accepted_when_normalise_false(self):
        dist = JointDistribution(("a",), {0: 0.3, 1: 0.7}, normalise=False)
        assert dist.probability(1) == pytest.approx(0.7)

    def test_negative_probability_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {0: -0.1, 1: 1.1})

    def test_nan_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {0: float("nan"), 1: 1.0})

    def test_empty_support_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {})

    def test_zero_mass_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {0: 0.0, 1: 0.0})

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a",), {2: 1.0})

    def test_duplicate_fact_ids_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution(("a", "a"), {0: 1.0})

    def test_no_facts_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution((), {0: 1.0})

    def test_from_assignments_tuple_keys(self):
        dist = two_fact_distribution()
        assert dist.probability((True, True)) == pytest.approx(0.4)

    def test_from_assignments_wrong_length_rejected(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution.from_assignments(("a", "b"), {(True,): 1.0})

    def test_independent_product(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.2})
        assert dist.probability((True, True)) == pytest.approx(0.1)
        assert dist.probability((False, False)) == pytest.approx(0.4)
        assert dist.support_size == 4

    def test_independent_degenerate_marginal(self):
        dist = JointDistribution.independent({"a": 1.0, "b": 0.5})
        assert dist.marginal("a") == pytest.approx(1.0)
        assert dist.support_size == 2

    def test_independent_invalid_marginal(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution.independent({"a": 1.2})

    def test_independent_missing_marginal_for_fact_order(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution.independent({"a": 0.2}, fact_ids=("a", "b"))

    def test_uniform(self):
        dist = JointDistribution.uniform(("a", "b", "c"))
        assert dist.support_size == 8
        assert dist.entropy() == pytest.approx(3.0)

    def test_uniform_refuses_huge_fact_sets(self):
        with pytest.raises(InvalidDistributionError):
            JointDistribution.uniform(tuple(f"f{i}" for i in range(25)))


class TestQuantities:
    def test_entropy_of_helper(self):
        assert entropy_of([0.5, 0.5]) == pytest.approx(1.0)
        assert entropy_of([1.0]) == pytest.approx(0.0)
        assert entropy_of([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    def test_entropy_matches_manual_computation(self):
        dist = two_fact_distribution()
        expected = -(0.4 * math.log2(0.4) * 2 + 0.1 * math.log2(0.1) * 2)
        assert dist.entropy() == pytest.approx(expected)

    def test_marginals(self):
        dist = two_fact_distribution()
        assert dist.marginal("f1") == pytest.approx(0.5)
        assert dist.marginal("f2") == pytest.approx(0.5)
        assert dist.marginals() == pytest.approx({"f1": 0.5, "f2": 0.5})

    def test_marginal_unknown_fact(self):
        with pytest.raises(InvalidFactError):
            two_fact_distribution().marginal("zzz")

    def test_marginalize_reduces_facts(self):
        dist = two_fact_distribution()
        reduced = dist.marginalize(["f1"])
        assert reduced.fact_ids == ("f1",)
        assert reduced.probability((True,)) == pytest.approx(0.5)

    def test_marginalize_empty_rejected(self):
        with pytest.raises(InvalidDistributionError):
            two_fact_distribution().marginalize([])

    def test_marginalize_entropy_never_increases(self):
        dist = two_fact_distribution()
        assert dist.marginalize(["f1"]).entropy() <= dist.entropy() + 1e-12

    def test_condition_on_evidence(self):
        dist = two_fact_distribution()
        conditioned = dist.condition({"f1": True})
        assert conditioned.marginal("f1") == pytest.approx(1.0)
        assert conditioned.marginal("f2") == pytest.approx(0.8)

    def test_condition_zero_probability_evidence(self):
        dist = JointDistribution.from_assignments(
            ("a", "b"), {(True, True): 0.5, (False, False): 0.5}
        )
        with pytest.raises(InvalidDistributionError):
            dist.condition({"a": True, "b": False})

    def test_condition_empty_evidence_is_copy(self):
        dist = two_fact_distribution()
        assert dist.condition({}).allclose(dist)

    def test_reweight(self):
        dist = JointDistribution(("a",), {0: 0.5, 1: 0.5})
        updated = dist.reweight({1: 3.0})
        assert updated.probability(1) == pytest.approx(0.75)

    def test_reweight_missing_masks_default_to_one(self):
        dist = JointDistribution(("a",), {0: 0.5, 1: 0.5})
        assert dist.reweight({}).allclose(dist)


class TestDecisions:
    def test_map_assignment(self):
        dist = two_fact_distribution()
        best = dist.map_assignment()
        assert best.to_bools() in [(False, False), (True, True)]

    def test_predicted_labels_threshold(self):
        dist = JointDistribution.independent({"a": 0.7, "b": 0.3})
        labels = dist.predicted_labels()
        assert labels == {"a": True, "b": False}

    def test_predicted_labels_tie_goes_false(self):
        dist = JointDistribution.independent({"a": 0.5})
        assert dist.predicted_labels() == {"a": False}

    def test_predicted_labels_custom_threshold(self):
        dist = JointDistribution.independent({"a": 0.6})
        assert dist.predicted_labels(threshold=0.7) == {"a": False}


class TestUtilityMethods:
    def test_copy_is_independent_and_equal(self):
        dist = two_fact_distribution()
        other = dist.copy()
        assert other is not dist
        assert other.allclose(dist)

    def test_allclose_detects_difference(self):
        a = JointDistribution.independent({"x": 0.5})
        b = JointDistribution.independent({"x": 0.6})
        assert not a.allclose(b)

    def test_allclose_requires_same_fact_order(self):
        a = JointDistribution.independent({"x": 0.5, "y": 0.5})
        b = JointDistribution.independent({"y": 0.5, "x": 0.5})
        assert not a.allclose(b)

    def test_assignments_iterates_support(self):
        dist = two_fact_distribution()
        pairs = list(dist.assignments())
        assert len(pairs) == dist.support_size
        assert sum(probability for _, probability in pairs) == pytest.approx(1.0)

    def test_repr_contains_summary(self):
        text = repr(two_fact_distribution())
        assert "facts=2" in text
        assert "support=4" in text

    def test_positions(self):
        dist = two_fact_distribution()
        assert dist.positions(("f2", "f1")) == (1, 0)

    def test_as_dict_is_a_copy(self):
        dist = two_fact_distribution()
        mapping = dist.as_dict()
        mapping.clear()
        assert dist.support_size == 4


class TestWideFactSets:
    """Distributions past 63 facts: masks exceed int64, so the array fast
    path must fall back to object-dtype masks without changing results."""

    @staticmethod
    def wide_distribution(num_facts=70, support=40, seed=1):
        import random

        rng = random.Random(seed)
        fact_ids = tuple(f"f{i}" for i in range(num_facts))
        masks = list({rng.getrandbits(num_facts) for _ in range(support)})
        # Force at least one mask past the int64 range.
        masks[0] |= 1 << (num_facts - 1)
        probs = {mask: rng.uniform(0.1, 1.0) for mask in masks}
        return JointDistribution(fact_ids, probs)

    def test_entropy_and_marginals(self):
        dist = self.wide_distribution()
        entropy = dist.entropy()
        assert 0.0 < entropy <= dist.num_facts
        for probability in dist.marginals().values():
            assert -1e-9 <= probability <= 1.0 + 1e-9
        assert dist.marginal("f69") == pytest.approx(dist.marginals()["f69"])

    def test_marginalize_and_condition(self):
        dist = self.wide_distribution()
        sub = dist.marginalize(["f0", "f69"])
        assert sub.num_facts == 2
        conditioned = dist.condition({"f69": True})
        assert conditioned.marginal("f69") == pytest.approx(1.0)

    def test_selection_and_merging_still_work(self):
        from repro.core.answers import AnswerSet
        from repro.core.crowd import CrowdModel
        from repro.core.merging import merge_answers
        from repro.core.selection import GreedySelector, LazyGreedySelector

        dist = self.wide_distribution()
        crowd = CrowdModel(0.8)
        plain = GreedySelector().select(dist, crowd, 2)
        lazy = LazyGreedySelector().select(dist, crowd, 2)
        assert len(plain.task_ids) == 2
        assert lazy.task_ids == plain.task_ids
        answers = AnswerSet.from_mapping({plain.task_ids[0]: True})
        posterior = merge_answers(dist, answers, crowd)
        assert posterior.support_size <= dist.support_size
