"""Adaptive channel re-calibration: sessions re-estimating crowd accuracy.

A session built with ``recalibrate=True`` watches how strongly the merged
posterior endorses each received answer and overlays per-fact accuracy
re-estimates on the base channel model.  The overlay must stay inside
Definition 2's ``[0.5, 1]`` band, leave unasked facts on the base channel,
and be entirely absent when the flag is off.
"""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, RecalibratedChannelModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.selection import GreedySelector, RefinementSession, SessionPool
from repro.evaluation.experiment import ExperimentConfig, build_problems, run_quality_experiment
from repro.exceptions import SelectionError
from repro.fusion import MajorityVote


def dense_distribution(num_facts, support, seed=0):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


class TestRecalibrationFlag:
    def test_disabled_sessions_never_touch_the_channel(self):
        crowd = CrowdModel(0.8)
        session = RefinementSession(dense_distribution(6, 40), crowd)
        assert not session.recalibrates
        session.merge(AnswerSet.from_mapping({"f0": True, "f2": False}))
        assert session.channel is crowd

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(SelectionError):
            RefinementSession(
                dense_distribution(4, 12), CrowdModel(0.8), recalibrate=True,
                recalibration_smoothing=0.0,
            )

    def test_enabled_sessions_overlay_answered_facts_only(self):
        crowd = CrowdModel(0.8)
        session = RefinementSession(
            dense_distribution(6, 40), crowd, recalibrate=True
        )
        session.merge(AnswerSet.from_mapping({"f0": True, "f2": False}))
        channel = session.channel
        assert isinstance(channel, RecalibratedChannelModel)
        assert channel.base is crowd
        assert set(channel.fact_accuracies) == {"f0", "f2"}
        assert channel.accuracy_for("f5") == 0.8
        # Heterogeneous overlays disable the uniform fast path.
        assert channel.uniform_accuracy is None


class TestRecalibrationDynamics:
    def test_estimates_stay_in_definition2_band(self):
        session = RefinementSession(
            dense_distribution(6, 48, seed=3), CrowdModel(0.8), recalibrate=True
        )
        rng = np.random.default_rng(0)
        for _ in range(12):
            session.merge(
                AnswerSet.from_mapping({"f1": bool(rng.integers(0, 2))})
            )
        accuracy = session.channel.accuracy_for("f1")
        assert 0.5 <= accuracy <= 1.0

    def test_consistent_answers_raise_the_estimate(self):
        session = RefinementSession(
            dense_distribution(6, 48, seed=5), CrowdModel(0.8), recalibrate=True
        )
        for _ in range(10):
            session.merge(AnswerSet.from_mapping({"f3": True}))
        # A crowd the posterior always ends up agreeing with is more accurate
        # than the assumed base Pc.
        assert session.channel.accuracy_for("f3") > 0.8

    def test_contradictory_answers_sink_toward_the_coin_flip_floor(self):
        session = RefinementSession(
            dense_distribution(6, 48, seed=7), CrowdModel(0.9), recalibrate=True
        )
        for round_index in range(10):
            session.merge(
                AnswerSet.from_mapping({"f4": round_index % 2 == 0})
            )
        assert 0.5 <= session.channel.accuracy_for("f4") < 0.9

    def test_selection_runs_on_the_recalibrated_channel(self):
        session = RefinementSession(
            dense_distribution(8, 64, seed=9), CrowdModel(0.8), recalibrate=True
        )
        session.merge(AnswerSet.from_mapping({"f0": True, "f1": True}))
        result = session.select(GreedySelector(), 3)
        assert len(result.task_ids) >= 1
        # The engine now prices per-fact noise: its channel is the overlay.
        assert session.engine.crowd is session.channel


class TestRecalibrationWiring:
    def test_crowd_fusion_engine_flag(self):
        distribution = dense_distribution(6, 40, seed=11)
        gold = {fact_id: index % 2 == 0 for index, fact_id in enumerate(distribution.fact_ids)}

        def oracle(task_ids):
            return AnswerSet.from_mapping({fact_id: gold[fact_id] for fact_id in task_ids})

        engine = CrowdFusionEngine(
            GreedySelector(), CrowdModel(0.8), budget=6, tasks_per_round=2,
            recalibrate_channels=True,
        )
        result = engine.run(distribution, oracle)
        assert result.rounds
        assert np.isfinite(result.final_utility)

    def test_session_pool_passthrough(self):
        pool = SessionPool()
        session = pool.add(
            "entity", dense_distribution(5, 24), CrowdModel(0.8), recalibrate=True
        )
        assert session.recalibrates

    def test_experiment_config_flag_runs_end_to_end(self):
        from repro.datasets import BookCorpusConfig, generate_book_corpus

        corpus = generate_book_corpus(
            BookCorpusConfig(
                num_books=3, num_sources=6, max_sources_per_book=6, seed=13
            )
        )
        problems = build_problems(
            corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=5
        )
        config = ExperimentConfig(
            selector="greedy", k=2, budget_per_entity=4,
            recalibrate_channels=True, seed=13,
        )
        result = run_quality_experiment(problems, config)
        assert len(result.points) >= 2
        assert all(np.isfinite(point.utility) for point in result.points)
