"""Construct correlated joint distributions from marginals and rules.

The builder starts from the independent product of the per-fact marginals and
multiplies in the compatibility factor of every correlation rule, then
renormalises.  To keep the result laptop-scale for larger fact sets it works
per *component* (facts connected through shared rules) and prunes the support
to the most probable assignments when combining components — the paper's
algorithms only ever see the resulting sparse output table, which is exactly
the ``{Oid, P}`` input format used in its NP-hardness construction.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.distribution import JointDistribution
from repro.correlation.rules import CorrelationRule
from repro.exceptions import InvalidDistributionError

#: Components larger than this are refused outright (2^22 assignments).
_EXHAUSTIVE_LIMIT = 22


class JointDistributionBuilder:
    """Build a :class:`JointDistribution` from marginals plus correlation rules.

    Parameters
    ----------
    marginals:
        Mapping from fact id to its prior probability of being true; the
        iteration order fixes the fact order of the resulting distribution.
    rules:
        Correlation rules over subsets of those facts.
    max_support:
        Upper bound on the number of assignments kept when combining
        independent components; the least probable assignments are dropped
        and the distribution is renormalised.  ``None`` disables pruning.
    """

    def __init__(
        self,
        marginals: Mapping[str, float],
        rules: Iterable[CorrelationRule] = (),
        max_support: Optional[int] = 4096,
    ):
        if not marginals:
            raise InvalidDistributionError("at least one fact marginal is required")
        self._marginals: Dict[str, float] = dict(marginals)
        self._rules: List[CorrelationRule] = list(rules)
        for rule in self._rules:
            unknown = [f for f in rule.fact_ids if f not in self._marginals]
            if unknown:
                raise InvalidDistributionError(
                    f"rule {rule!r} references facts without marginals: {unknown}"
                )
        if max_support is not None and max_support <= 0:
            raise InvalidDistributionError(
                f"max_support must be positive or None, got {max_support}"
            )
        self._max_support = max_support

    # -- public API ---------------------------------------------------------------------

    def build(self) -> JointDistribution:
        """Build the correlated joint distribution over all facts."""
        fact_ids = tuple(self._marginals)
        components = self._components(fact_ids)
        partial: Optional[Dict[Tuple[str, ...], Dict[int, float]]] = None

        combined_ids: Tuple[str, ...] = ()
        combined: Dict[int, float] = {0: 1.0}
        for component in components:
            component_dist = self._build_component(component)
            combined = self._product(combined, len(combined_ids), component_dist)
            combined_ids = combined_ids + component
            combined = self._prune(combined)
        del partial  # single-pass combination; kept name for readability of the loop

        # Re-order bits to match the caller-supplied fact order.
        reordered = self._reorder(combined, combined_ids, fact_ids)
        return JointDistribution(fact_ids, reordered, normalise=True)

    # -- internals -----------------------------------------------------------------------

    def _components(self, fact_ids: Sequence[str]) -> List[Tuple[str, ...]]:
        """Group facts into connected components induced by shared rules."""
        parent: Dict[str, str] = {fact_id: fact_id for fact_id in fact_ids}

        def find(fact_id: str) -> str:
            while parent[fact_id] != fact_id:
                parent[fact_id] = parent[parent[fact_id]]
                fact_id = parent[fact_id]
            return fact_id

        def union(a: str, b: str) -> None:
            root_a, root_b = find(a), find(b)
            if root_a != root_b:
                parent[root_b] = root_a

        for rule in self._rules:
            first = rule.fact_ids[0]
            for other in rule.fact_ids[1:]:
                union(first, other)

        grouped: Dict[str, List[str]] = {}
        for fact_id in fact_ids:
            grouped.setdefault(find(fact_id), []).append(fact_id)
        # Preserve the original fact order inside and across components.
        components = sorted(grouped.values(), key=lambda group: fact_ids.index(group[0]))
        return [tuple(group) for group in components]

    def _build_component(self, fact_ids: Tuple[str, ...]) -> Dict[int, float]:
        """Exhaustively weight all assignments of one correlated component."""
        n = len(fact_ids)
        if n > _EXHAUSTIVE_LIMIT:
            raise InvalidDistributionError(
                f"correlated component {list(fact_ids)} has {n} facts; "
                f"components above {_EXHAUSTIVE_LIMIT} facts are not supported — "
                "split the rules or reduce the fact set"
            )
        relevant_rules = [
            rule for rule in self._rules if all(f in fact_ids for f in rule.fact_ids)
        ]
        marginals = [self._marginals[fact_id] for fact_id in fact_ids]
        probs: Dict[int, float] = {}
        for mask in range(1 << n):
            weight = 1.0
            for position, p_true in enumerate(marginals):
                weight *= p_true if mask >> position & 1 else (1.0 - p_true)
            if weight <= 0.0:
                continue
            if relevant_rules:
                assignment = {
                    fact_id: bool(mask >> position & 1)
                    for position, fact_id in enumerate(fact_ids)
                }
                for rule in relevant_rules:
                    weight *= rule.factor(assignment)
                    if weight <= 0.0:
                        break
            if weight > 0.0:
                probs[mask] = weight
        if not probs:
            raise InvalidDistributionError(
                f"rules over {list(fact_ids)} eliminate every assignment"
            )
        total = sum(probs.values())
        return {mask: p / total for mask, p in probs.items()}

    @staticmethod
    def _product(
        left: Dict[int, float], left_width: int, right: Dict[int, float]
    ) -> Dict[int, float]:
        """Product distribution of two independent blocks (right bits appended above left)."""
        if left_width == 0:
            return dict(right)
        combined: Dict[int, float] = {}
        for right_mask, right_prob in right.items():
            shifted = right_mask << left_width
            for left_mask, left_prob in left.items():
                combined[shifted | left_mask] = left_prob * right_prob
        return combined

    def _prune(self, probs: Dict[int, float]) -> Dict[int, float]:
        """Keep only the ``max_support`` most probable assignments (renormalised)."""
        if self._max_support is None or len(probs) <= self._max_support:
            return probs
        kept = heapq.nlargest(self._max_support, probs.items(), key=lambda item: item[1])
        total = sum(probability for _mask, probability in kept)
        return {mask: probability / total for mask, probability in kept}

    @staticmethod
    def _reorder(
        probs: Dict[int, float],
        current_order: Tuple[str, ...],
        target_order: Tuple[str, ...],
    ) -> Dict[int, float]:
        """Permute assignment bits from ``current_order`` to ``target_order``."""
        if current_order == target_order:
            return probs
        position_map = [current_order.index(fact_id) for fact_id in target_order]
        reordered: Dict[int, float] = {}
        for mask, probability in probs.items():
            new_mask = 0
            for target_position, source_position in enumerate(position_map):
                if mask >> source_position & 1:
                    new_mask |= 1 << target_position
            reordered[new_mask] = reordered.get(new_mask, 0.0) + probability
        return reordered
