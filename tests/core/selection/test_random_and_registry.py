"""Unit tests for the random baseline and the selector registry."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.selection import (
    BruteForceSelector,
    GreedySelector,
    PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector,
    PruningGreedySelector,
    RandomSelector,
    available_selectors,
    get_selector,
)
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import SelectionError


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


class TestRandomSelector:
    def test_selects_k_distinct_tasks(self, crowd):
        dist = running_example_distribution()
        result = RandomSelector(seed=1).select(dist, crowd, 3)
        assert len(result.task_ids) == 3
        assert len(set(result.task_ids)) == 3

    def test_deterministic_given_seed(self, crowd):
        dist = running_example_distribution()
        first = RandomSelector(seed=42).select(dist, crowd, 2)
        second = RandomSelector(seed=42).select(dist, crowd, 2)
        assert first.task_ids == second.task_ids

    def test_different_seeds_eventually_differ(self, crowd):
        dist = running_example_distribution()
        selections = {
            RandomSelector(seed=seed).select(dist, crowd, 2).task_ids
            for seed in range(10)
        }
        assert len(selections) > 1

    def test_objective_is_entropy_of_chosen_set(self, crowd):
        dist = running_example_distribution()
        result = RandomSelector(seed=0).select(dist, crowd, 2)
        assert result.objective == pytest.approx(
            crowd.task_entropy(dist, result.task_ids)
        )

    def test_respects_exclusion(self, crowd):
        dist = running_example_distribution()
        result = RandomSelector(seed=3).select(dist, crowd, 2, exclude=["f1", "f2"])
        assert set(result.task_ids) == {"f3", "f4"}

    def test_never_better_than_opt(self, crowd):
        dist = running_example_distribution()
        opt = BruteForceSelector().select(dist, crowd, 2).objective
        for seed in range(5):
            random_objective = RandomSelector(seed=seed).select(dist, crowd, 2).objective
            assert random_objective <= opt + 1e-9


class TestRegistry:
    def test_all_canonical_names_listed(self):
        names = available_selectors()
        assert set(names) == {
            "opt",
            "greedy",
            "greedy_lazy",
            "greedy_prune",
            "greedy_pre",
            "greedy_prune_pre",
            "greedy_reference",
            "random",
            "fact_entropy",
        }

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("opt", BruteForceSelector),
            ("greedy", GreedySelector),
            ("greedy_prune", PruningGreedySelector),
            ("greedy_pre", PreprocessingGreedySelector),
            ("greedy_prune_pre", PrunedPreprocessingGreedySelector),
            ("random", RandomSelector),
        ],
    )
    def test_canonical_names_resolve(self, name, cls):
        assert isinstance(get_selector(name), cls)

    @pytest.mark.parametrize(
        "label, cls",
        [
            ("OPT", BruteForceSelector),
            ("Approx.", GreedySelector),
            ("Approx.&Prune", PruningGreedySelector),
            ("Approx.&Pre.", PreprocessingGreedySelector),
            ("Approx.&Prune&Pre.", PrunedPreprocessingGreedySelector),
            ("Random", RandomSelector),
        ],
    )
    def test_paper_labels_resolve(self, label, cls):
        assert isinstance(get_selector(label), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(SelectionError):
            get_selector("simulated_annealing")

    def test_kwargs_forwarded(self):
        selector = get_selector("random", seed=7)
        assert isinstance(selector, RandomSelector)
