"""Equivalence and lifecycle suite for the persistent parallel runtime.

The persistent pool's contract extends the per-call evaluator's: one
fork-shared worker pool owned by a :class:`RefinementSession` survives every
``merge`` (posteriors travel through the shared-memory snapshot ring, channel
swaps are replayed from the dispatch header), and every selection it serves
must be bit-for-bit what the serial session path selects — same task ids,
objectives within 1e-9 — across worker counts, channel models, the lazy
batch-refresh variant, re-calibration, and batched multi-query scoring.
The lifecycle half: worker processes must never outlive their owning
session/evaluator, even when a selector raises mid-scan.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.query import Query
from repro.core.selection import (
    GreedySelector,
    LazyGreedySelector,
    ParallelEvaluator,
    ParallelPolicy,
    PrunedPreprocessingGreedySelector,
    QueryGreedySelector,
    RefinementSession,
    SessionPool,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.parallel import _SnapshotRing, fork_available
from repro.exceptions import SelectionError

#: Forces the pool for any scan with at least two candidates.
FORCE_PARALLEL = 0


def dense_distribution(num_facts, support, seed=0):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def heterogeneous_channel(fact_ids):
    return PerFactChannelModel(
        0.8, {fact_id: 0.6 + 0.03 * index for index, fact_id in enumerate(fact_ids)}
    )


def scripted_answers(task_ids, round_index):
    """Deterministic per-round answers so serial and parallel runs merge alike."""
    return AnswerSet.from_mapping(
        {fact_id: (round_index + position) % 2 == 0
         for position, fact_id in enumerate(task_ids)}
    )


def run_rounds(session, selector, rounds=4, k=3):
    """Select/merge ``rounds`` times; return the per-round (ids, objective)."""
    history = []
    for round_index in range(rounds):
        result = session.select(selector, k)
        history.append((result.task_ids, result.objective, result.stats))
        session.merge(scripted_answers(result.task_ids, round_index))
    return history


def assert_histories_match(serial, parallel):
    assert len(serial) == len(parallel)
    for (serial_ids, serial_objective, _), (ids, objective, _) in zip(serial, parallel):
        assert ids == serial_ids
        assert abs(objective - serial_objective) < 1e-9


class TestSnapshotRing:
    def test_publish_read_roundtrip_is_bit_exact(self):
        ring = _SnapshotRing(support_size=64, slots=3)
        try:
            probabilities = np.random.default_rng(1).dirichlet(np.ones(64))
            slot = ring.publish(7, probabilities)
            assert slot == 7 % 3
            restored = ring.read(slot)
            assert restored.dtype == np.float64
            np.testing.assert_array_equal(restored, probabilities)
        finally:
            ring.close()

    def test_load_probabilities_decouples_from_the_ring(self):
        """The one copy on the sync path happens in load_probabilities: a
        later publish to the same slot must not reach an already-synced
        engine."""
        dist = dense_distribution(6, 32)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        ring = _SnapshotRing(support_size=32, slots=2)
        try:
            snapshot = np.random.default_rng(3).dirichlet(np.ones(32))
            slot = ring.publish(1, snapshot)
            engine.load_probabilities(ring.read(slot), reweights=1)
            np.testing.assert_array_equal(engine.probabilities, snapshot)
            ring.publish(3, np.full(32, 1.0 / 32))  # same slot, new generation
            np.testing.assert_array_equal(engine.probabilities, snapshot)
        finally:
            ring.close()

    def test_close_is_idempotent(self):
        ring = _SnapshotRing(support_size=8)
        ring.close()
        ring.close()


class TestLoadProbabilities:
    def test_snapshot_load_is_verbatim(self):
        dist = dense_distribution(6, 32)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        snapshot = np.random.default_rng(2).dirichlet(np.ones(32))
        engine.load_probabilities(snapshot, reweights=5)
        np.testing.assert_array_equal(engine.probabilities, snapshot)
        assert engine.reweights == 5

    def test_shape_mismatch_rejected(self):
        dist = dense_distribution(6, 32)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        with pytest.raises(SelectionError):
            engine.load_probabilities(np.ones(31), reweights=1)

    def test_views_refuse_snapshots(self):
        dist = dense_distribution(6, 32)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        view = engine.interest_view(("f0",))
        with pytest.raises(SelectionError):
            view.load_probabilities(np.ones(32), reweights=1)

    def test_set_channel_advances_the_generation(self):
        dist = dense_distribution(5, 16)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        assert engine.channel_swaps == 0
        engine.set_channel(CrowdModel(0.9))
        assert engine.channel_swaps == 1


class TestSessionLifecycle:
    def test_serial_session_has_no_evaluator(self):
        session = RefinementSession(dense_distribution(5, 16), CrowdModel(0.8))
        assert session.parallel_policy is None
        assert session.shared_evaluator() is None
        session.close()  # harmless on serial sessions

    def test_shared_evaluator_is_persistent_and_cached(self):
        session = RefinementSession(
            dense_distribution(5, 16), CrowdModel(0.8),
            parallel=ParallelPolicy(workers=2),
        )
        evaluator = session.shared_evaluator()
        assert evaluator is not None
        assert evaluator.persistent
        assert session.shared_evaluator() is evaluator
        session.close()

    def test_session_pool_close_releases_every_session(self):
        pool = SessionPool()
        policy = ParallelPolicy(workers=2)
        first = pool.add("a", dense_distribution(5, 16), CrowdModel(0.8), parallel=policy)
        second = pool.add("b", dense_distribution(5, 16, seed=1), CrowdModel(0.8))
        first_evaluator = first.shared_evaluator()
        assert first_evaluator is not None
        with pool:
            pass
        assert first.shared_evaluator() is not first_evaluator
        assert second.shared_evaluator() is None

    def test_engine_requires_policy_for_persistent_pool(self):
        with pytest.raises(SelectionError):
            CrowdFusionEngine(
                GreedySelector(), CrowdModel(0.8), budget=4, tasks_per_round=2,
                persistent_pool=True,
            )

    def test_engine_rejects_persistent_pool_without_fork(self, monkeypatch):
        monkeypatch.setattr("repro.core.engine.fork_available", lambda: False)
        with pytest.raises(SelectionError, match="fork"):
            CrowdFusionEngine(
                GreedySelector(), CrowdModel(0.8), budget=4, tasks_per_round=2,
                parallel=ParallelPolicy(workers=2), persistent_pool=True,
            )


@pytest.mark.parallel
class TestNoLeakedWorkers:
    """Satellite regression: pools die with their owner, even on exceptions."""

    def test_evaluator_context_reclaims_pool_when_worker_raises(self):
        dist = dense_distribution(8, 64)
        engine = EntropyEngine(dist, CrowdModel(0.8))
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with pytest.raises(Exception):
            with ParallelEvaluator(engine, policy) as evaluator:
                # Unknown fact ids make the workers raise mid-scan; the
                # context manager must still terminate the forked pool.
                evaluator.evaluate(engine.initial_state(), ["f0", "no-such-fact"])
        assert multiprocessing.active_children() == []

    def test_per_call_pool_reclaimed_when_selector_raises_mid_scan(self):
        class ExplodingGreedy(GreedySelector):
            def _runner(self, engine, k, candidates, evaluator):
                evaluator.evaluate(engine.initial_state(), list(candidates))
                raise RuntimeError("boom")

        dist = dense_distribution(8, 64)
        selector = ExplodingGreedy(
            parallel=ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        )
        with pytest.raises(RuntimeError, match="boom"):
            selector.select(dist, CrowdModel(0.8), 2)
        assert multiprocessing.active_children() == []

    def test_session_context_reclaims_persistent_pool_on_exception(self):
        class ExplodingGreedy(GreedySelector):
            def _runner(self, engine, k, candidates, evaluator):
                evaluator.evaluate(engine.initial_state(), list(candidates))
                raise RuntimeError("boom")

        dist = dense_distribution(8, 64)
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with pytest.raises(RuntimeError, match="boom"):
            with RefinementSession(dist, CrowdModel(0.8), parallel=policy) as session:
                session.select(GreedySelector(), 2)  # forks the persistent pool
                assert multiprocessing.active_children() != []
                session.select(ExplodingGreedy(), 2)
        assert multiprocessing.active_children() == []

    def test_crowdfusion_engine_releases_pool_when_provider_raises(self):
        dist = dense_distribution(8, 64)
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        engine = CrowdFusionEngine(
            GreedySelector(), CrowdModel(0.8), budget=6, tasks_per_round=2,
            parallel=policy, persistent_pool=True,
        )

        calls = {"count": 0}

        def provider(task_ids):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("platform down")
            return scripted_answers(task_ids, calls["count"])

        with pytest.raises(RuntimeError, match="platform down"):
            engine.run(dist, provider)
        assert multiprocessing.active_children() == []


@pytest.mark.parallel
class TestPersistentPoolEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_multi_round_greedy_matches_serial_session(self, workers):
        dist = dense_distribution(12, 512, seed=3)
        crowd = CrowdModel(0.8)
        serial = run_rounds(RefinementSession(dist, crowd), GreedySelector())
        policy = ParallelPolicy(workers=workers, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(dist, crowd, parallel=policy) as session:
            persistent = run_rounds(session, GreedySelector())
        assert_histories_match(serial, persistent)
        if workers >= 2:
            # Rounds after the first prove the snapshot ring: the posterior
            # changed, the pool did not re-fork, selections still match.
            assert all(stats.parallel_evaluations > 0 for _, _, stats in persistent)
            assert all(stats.workers == workers for _, _, stats in persistent)

    def test_multi_round_heterogeneous_channels(self):
        dist = dense_distribution(10, 256, seed=4)
        channel = heterogeneous_channel(dist.fact_ids)
        serial = run_rounds(RefinementSession(dist, channel), GreedySelector())
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(dist, channel, parallel=policy) as session:
            persistent = run_rounds(session, GreedySelector())
        assert_histories_match(serial, persistent)

    def test_multi_round_pruning_variant(self):
        dist = dense_distribution(11, 256, seed=5)
        crowd = CrowdModel(0.75)
        serial = run_rounds(
            RefinementSession(dist, crowd), PrunedPreprocessingGreedySelector()
        )
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(dist, crowd, parallel=policy) as session:
            persistent = run_rounds(session, PrunedPreprocessingGreedySelector())
        assert_histories_match(serial, persistent)

    def test_recalibrating_session_matches_fresh_serial(self):
        """set_channel swaps must replay into the already-forked workers."""
        dist = dense_distribution(10, 256, seed=6)
        crowd = CrowdModel(0.8)
        serial = run_rounds(
            RefinementSession(dist, crowd, recalibrate=True), GreedySelector()
        )
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(
            dist, crowd, recalibrate=True, parallel=policy
        ) as session:
            persistent = run_rounds(session, GreedySelector())
            assert session.channel is not crowd  # a swap actually happened
        assert_histories_match(serial, persistent)

    def test_crowdfusion_engine_persistent_run_matches_serial(self):
        dist = dense_distribution(12, 512, seed=7)
        crowd = CrowdModel(0.8)

        def provider(task_ids):
            return scripted_answers(task_ids, len(task_ids))

        serial = CrowdFusionEngine(
            GreedySelector(), crowd, budget=8, tasks_per_round=2
        ).run(dist, provider)
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        persistent = CrowdFusionEngine(
            GreedySelector(), crowd, budget=8, tasks_per_round=2,
            parallel=policy, persistent_pool=True,
        ).run(dist, provider)
        assert [r.task_ids for r in persistent.rounds] == [
            r.task_ids for r in serial.rounds
        ]
        assert persistent.final_utility == pytest.approx(serial.final_utility, abs=1e-9)
        assert multiprocessing.active_children() == []


@pytest.mark.parallel
class TestParallelLazyGreedy:
    """Batch-refresh CELF: same selections as the sequential heap."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_single_selection_matches_sequential_heap(self, workers):
        dist = dense_distribution(12, 512, seed=8)
        crowd = CrowdModel(0.8)
        serial = LazyGreedySelector().select(dist, crowd, 5)
        parallel = LazyGreedySelector(
            parallel=ParallelPolicy(workers=workers, parallel_threshold=FORCE_PARALLEL)
        ).select(dist, crowd, 5)
        assert parallel.task_ids == serial.task_ids
        assert abs(parallel.objective - serial.objective) < 1e-9
        assert parallel.stats.parallel_evaluations > 0
        # Waves may refresh a few extra stale candidates, never fewer.
        assert parallel.stats.candidate_evaluations >= serial.stats.candidate_evaluations

    def test_lazy_matches_plain_greedy_under_waves(self):
        dist = dense_distribution(11, 256, seed=9)
        crowd = CrowdModel(0.8)
        plain = GreedySelector().select(dist, crowd, 4)
        waves = LazyGreedySelector(
            parallel=ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        ).select(dist, crowd, 4)
        assert waves.task_ids == plain.task_ids
        assert abs(waves.objective - plain.objective) < 1e-9

    def test_multi_round_lazy_on_persistent_pool(self):
        dist = dense_distribution(12, 512, seed=10)
        channel = heterogeneous_channel(dist.fact_ids)
        serial = run_rounds(RefinementSession(dist, channel), LazyGreedySelector())
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(dist, channel, parallel=policy) as session:
            persistent = run_rounds(session, LazyGreedySelector())
        assert_histories_match(serial, persistent)

    def test_below_threshold_waves_degenerate_to_sequential_stats(self):
        """With the pool elected off, the wave loop must not change *anything*:
        below the threshold waves cap at one pop, so even the lazy skip
        counts match the sequential heap exactly (CELF savings preserved)."""
        dist = dense_distribution(10, 128, seed=11)
        crowd = CrowdModel(0.8)
        serial = LazyGreedySelector().select(dist, crowd, 4)
        guarded = LazyGreedySelector(
            parallel=ParallelPolicy(workers=4)  # default threshold: stays serial
        ).select(dist, crowd, 4)
        assert guarded.task_ids == serial.task_ids
        assert guarded.objective == serial.objective
        assert guarded.stats.workers == 0
        assert guarded.stats.parallel_evaluations == 0
        assert guarded.stats.candidate_evaluations == serial.stats.candidate_evaluations
        assert guarded.stats.skipped_evaluations == serial.stats.skipped_evaluations


@pytest.mark.parallel
class TestSessionInterplayOnPersistentPool:
    """Satellite: batched queries and re-calibration ride the persistent pool."""

    def test_select_queries_matches_fresh_engines(self):
        dist = dense_distribution(10, 256, seed=12)
        crowd = CrowdModel(0.8)
        queries = [Query.of(("f0", "f4")), Query.of(("f2",)), Query.of(("f6", "f8"))]
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with RefinementSession(dist, crowd, parallel=policy) as session:
            session.select(GreedySelector(), 3)  # fork the pool first
            session.merge(AnswerSet.from_mapping({"f0": True, "f5": False}))
            batched = session.select_queries(queries, 3)
            posterior = session.distribution
        for query, result in zip(queries, batched):
            fresh = QueryGreedySelector(query).select(posterior, crowd, 3)
            assert result.task_ids == fresh.task_ids
            assert abs(result.objective - fresh.objective) < 1e-9

    def test_session_pool_select_queries_on_persistent_sessions(self):
        dist = dense_distribution(9, 128, seed=13)
        crowd = CrowdModel(0.8)
        queries = [Query.of(("f0",)), Query.of(("f3", "f5"))]
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)
        with SessionPool() as pool:
            pool.add("entity", dist, crowd, parallel=policy)
            pool["entity"].select(GreedySelector(), 2)
            pooled = pool.select_queries("entity", queries, 2)
        direct = RefinementSession(dist, crowd).select_queries(queries, 2)
        assert [r.task_ids for r in pooled] == [r.task_ids for r in direct]
        assert multiprocessing.active_children() == []

    def test_recalibrated_select_queries_after_channel_swap(self):
        dist = dense_distribution(9, 128, seed=14)
        crowd = CrowdModel(0.8)
        queries = [Query.of(("f1", "f2")), Query.of(("f7",))]
        policy = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)

        def drive(session):
            for round_index in range(2):
                result = session.select(GreedySelector(), 2)
                session.merge(scripted_answers(result.task_ids, round_index))
            return session.select_queries(queries, 2)

        serial_session = RefinementSession(dist, crowd, recalibrate=True)
        serial = drive(serial_session)
        with RefinementSession(
            dist, crowd, recalibrate=True, parallel=policy
        ) as session:
            persistent = drive(session)
        for serial_result, result in zip(serial, persistent):
            assert result.task_ids == serial_result.task_ids
            assert abs(result.objective - serial_result.objective) < 1e-9
