"""Unit tests for facts-of-interest queries (Section IV data model)."""

import pytest

from repro.core.query import Query
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import QueryError


class TestQueryConstruction:
    def test_of_constructor(self):
        query = Query.of(["f1", "f2"], name="population-study")
        assert query.fact_ids == ("f1", "f2")
        assert query.name == "population-study"
        assert len(query) == 2

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            Query.of([])

    def test_duplicate_facts_rejected(self):
        with pytest.raises(QueryError):
            Query.of(["f1", "f1"])


class TestQueryAgainstDistribution:
    def test_validate_against_accepts_known_facts(self):
        query = Query.of(["f1", "f3"])
        query.validate_against(running_example_distribution())

    def test_validate_against_rejects_unknown_facts(self):
        query = Query.of(["f1", "zzz"])
        with pytest.raises(QueryError):
            query.validate_against(running_example_distribution())

    def test_interest_distribution_marginalises(self):
        dist = running_example_distribution()
        query = Query.of(["f2", "f3"])
        interest = query.interest_distribution(dist)
        assert interest.fact_ids == ("f2", "f3")
        assert interest.marginal("f2") == pytest.approx(dist.marginal("f2"))

    def test_utility_is_negative_interest_entropy(self):
        dist = running_example_distribution()
        query = Query.of(["f1"])
        assert query.utility(dist) == pytest.approx(-dist.marginalize(["f1"]).entropy())

    def test_full_query_utility_equals_overall_utility(self):
        dist = running_example_distribution()
        query = Query.of(dist.fact_ids)
        assert query.utility(dist) == pytest.approx(-dist.entropy())

    def test_smaller_query_has_no_lower_utility(self):
        """Marginalisation cannot increase entropy, so Q(I) ≥ Q(F) for I ⊆ F."""
        dist = running_example_distribution()
        small = Query.of(["f1"])
        full = Query.of(dist.fact_ids)
        assert small.utility(dist) >= full.utility(dist)
