"""Unit tests for correlation rules."""

import pytest

from repro.correlation.rules import (
    ImplicationRule,
    MutualExclusionRule,
    PositiveCorrelationRule,
)
from repro.exceptions import InvalidFactError


class TestRuleValidation:
    def test_empty_fact_list_rejected(self):
        with pytest.raises(InvalidFactError):
            MutualExclusionRule([])

    def test_duplicate_facts_rejected(self):
        with pytest.raises(InvalidFactError):
            MutualExclusionRule(["a", "a"])

    def test_strength_out_of_range_rejected(self):
        with pytest.raises(InvalidFactError):
            MutualExclusionRule(["a", "b"], strength=1.5)

    def test_missing_assignment_fact_rejected(self):
        rule = MutualExclusionRule(["a", "b"])
        with pytest.raises(InvalidFactError):
            rule.factor({"a": True})

    def test_violation_factor(self):
        rule = MutualExclusionRule(["a", "b"], strength=0.8)
        assert rule.violation_factor == pytest.approx(0.2)


class TestMutualExclusion:
    def test_satisfied_when_at_most_one_true(self):
        rule = MutualExclusionRule(["a", "b", "c"], strength=0.9)
        assert rule.factor({"a": True, "b": False, "c": False}) == 1.0
        assert rule.factor({"a": False, "b": False, "c": False}) == 1.0

    def test_violated_when_two_true(self):
        rule = MutualExclusionRule(["a", "b", "c"], strength=0.9)
        assert rule.factor({"a": True, "b": True, "c": False}) == pytest.approx(0.1)

    def test_max_true_parameter(self):
        rule = MutualExclusionRule(["a", "b", "c"], strength=1.0, max_true=2)
        assert rule.factor({"a": True, "b": True, "c": False}) == 1.0
        assert rule.factor({"a": True, "b": True, "c": True}) == 0.0

    def test_negative_max_true_rejected(self):
        with pytest.raises(InvalidFactError):
            MutualExclusionRule(["a"], max_true=-1)

    def test_hard_constraint_zeroes_violations(self):
        rule = MutualExclusionRule(["a", "b"], strength=1.0)
        assert rule.factor({"a": True, "b": True}) == 0.0


class TestImplication:
    def test_satisfied_cases(self):
        rule = ImplicationRule("a", "b", strength=0.7)
        assert rule.factor({"a": False, "b": False}) == 1.0
        assert rule.factor({"a": False, "b": True}) == 1.0
        assert rule.factor({"a": True, "b": True}) == 1.0

    def test_violated_case(self):
        rule = ImplicationRule("a", "b", strength=0.7)
        assert rule.factor({"a": True, "b": False}) == pytest.approx(0.3)

    def test_accessors(self):
        rule = ImplicationRule("x", "y")
        assert rule.antecedent == "x"
        assert rule.consequent == "y"
        assert rule.fact_ids == ("x", "y")


class TestPositiveCorrelation:
    def test_requires_two_facts(self):
        with pytest.raises(InvalidFactError):
            PositiveCorrelationRule(["a"])

    def test_satisfied_when_all_equal(self):
        rule = PositiveCorrelationRule(["a", "b", "c"], strength=0.6)
        assert rule.factor({"a": True, "b": True, "c": True}) == 1.0
        assert rule.factor({"a": False, "b": False, "c": False}) == 1.0

    def test_violated_when_mixed(self):
        rule = PositiveCorrelationRule(["a", "b"], strength=0.6)
        assert rule.factor({"a": True, "b": False}) == pytest.approx(0.4)

    def test_repr_mentions_facts(self):
        assert "a" in repr(PositiveCorrelationRule(["a", "b"]))
