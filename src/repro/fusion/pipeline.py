"""Fusion results and the fusion → CrowdFusion prior pipeline.

A :class:`FusionResult` is what every machine-only method produces: a
confidence score per claim plus the estimated source weights.  The
:class:`FusionPipeline` turns those confidences into the probabilistic prior
CrowdFusion needs — per-fact marginals, clipped away from 0/1 so the crowd
can still overturn a wrong machine decision, and optionally coupled through a
correlation builder into a joint output distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Protocol, Sequence, Tuple

from repro.core.distribution import JointDistribution
from repro.core.facts import Fact, FactSet
from repro.fusion.claims import Claim, ClaimDatabase
from repro.exceptions import FusionError


@dataclass(frozen=True)
class FusionResult:
    """Output of one machine-only fusion method.

    Attributes
    ----------
    method:
        Name of the algorithm that produced the result.
    confidences:
        Mapping from claim id to a confidence in ``[0, 1]`` that the claim is
        correct.
    source_weights:
        Mapping from source id to the method's estimate of source quality
        (scale is method-specific; higher is more reliable).
    iterations:
        Number of refinement iterations the method ran (0 for one-shot methods).
    """

    method: str
    confidences: Dict[str, float]
    source_weights: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0

    def confidence(self, claim_id: str) -> float:
        """Confidence of one claim; raises for unknown claim ids."""
        try:
            return self.confidences[claim_id]
        except KeyError:
            raise FusionError(f"no confidence recorded for claim {claim_id!r}") from None

    def labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Hard true/false labels obtained by thresholding the confidences."""
        return {
            claim_id: confidence > threshold
            for claim_id, confidence in self.confidences.items()
        }


class FusionMethod(Protocol):
    """Protocol every fusion algorithm satisfies."""

    name: str

    def run(self, database: ClaimDatabase) -> FusionResult:  # pragma: no cover - protocol
        """Score all claims in the database."""
        ...


def claims_to_facts(claims: Sequence[Claim], result: Optional[FusionResult] = None) -> FactSet:
    """Convert fusion claims into CrowdFusion facts.

    The claim id becomes the fact id; the claim's data item becomes the
    subject/predicate and its value the object.  When a fusion result is
    supplied its confidences become the fact priors.
    """
    if not claims:
        raise FusionError("cannot build a fact set from zero claims")
    facts = []
    for claim in claims:
        prior = None
        if result is not None:
            prior = min(1.0, max(0.0, result.confidence(claim.claim_id)))
        facts.append(
            Fact(
                fact_id=claim.claim_id,
                subject=claim.entity,
                predicate=claim.attribute,
                obj=claim.value,
                prior=prior,
                metadata=(("sources", ",".join(sorted(claim.sources))),),
            )
        )
    return FactSet(facts)


def fusion_prior(
    result: FusionResult,
    claims: Sequence[Claim],
    clip: float = 0.05,
    fact_ids: Optional[Sequence[str]] = None,
) -> JointDistribution:
    """Build an independent prior joint distribution from fusion confidences.

    ``clip`` keeps every marginal inside ``[clip, 1 − clip]`` so that no fact
    is already certain before the crowd is consulted — a wrong machine
    decision with confidence 1.0 could otherwise never be corrected by
    Bayesian merging.
    """
    if not 0.0 <= clip < 0.5:
        raise FusionError(f"clip must be in [0, 0.5), got {clip}")
    marginals: Dict[str, float] = {}
    for claim in claims:
        confidence = result.confidence(claim.claim_id)
        marginals[claim.claim_id] = min(1.0 - clip, max(clip, confidence))
    ordered = tuple(fact_ids) if fact_ids is not None else tuple(marginals)
    return JointDistribution.independent(marginals, fact_ids=ordered)


class FusionPipeline:
    """Glue a fusion method to the CrowdFusion input format.

    Parameters
    ----------
    method:
        Any object satisfying :class:`FusionMethod` (e.g. :class:`ModifiedCRH`).
    clip:
        Marginal clipping used by :func:`fusion_prior`.
    """

    def __init__(self, method: FusionMethod, clip: float = 0.05):
        self._method = method
        self._clip = clip

    def run(
        self, database: ClaimDatabase
    ) -> Tuple[FactSet, JointDistribution, FusionResult]:
        """Fuse the database and return ``(facts, prior distribution, raw result)``."""
        result = self._method.run(database)
        claims = database.claims()
        facts = claims_to_facts(claims, result)
        prior = fusion_prior(result, claims, clip=self._clip)
        return facts, prior, result

    def priors_by_entity(
        self, database: ClaimDatabase
    ) -> Dict[str, Tuple[FactSet, JointDistribution]]:
        """Fuse once, then split the prior into one independent block per entity.

        The paper treats each book independently (budget per book), which this
        helper mirrors: every entity gets its own fact set and prior joint
        distribution built from the same fusion run.
        """
        result = self._method.run(database)
        grouped: Dict[str, list] = {}
        for claim in database.claims():
            grouped.setdefault(claim.entity, []).append(claim)
        output: Dict[str, Tuple[FactSet, JointDistribution]] = {}
        for entity, claims in grouped.items():
            facts = claims_to_facts(claims, result)
            prior = fusion_prior(result, claims, clip=self._clip)
            output[entity] = (facts, prior)
        return output


def accuracy_against_gold(
    result: FusionResult, gold: Mapping[str, bool], threshold: float = 0.5
) -> float:
    """Fraction of claims whose thresholded label matches the gold label."""
    labels = result.labels(threshold)
    relevant = [claim_id for claim_id in labels if claim_id in gold]
    if not relevant:
        raise FusionError("no overlap between fusion result and gold labels")
    correct = sum(1 for claim_id in relevant if labels[claim_id] == gold[claim_id])
    return correct / len(relevant)
