"""The simulated crowdsourcing platform (gMission stand-in).

The platform exposes the same two-step API a real microtask platform client
would: :meth:`SimulatedPlatform.publish` posts a batch of tasks and returns a
batch id, :meth:`SimulatedPlatform.collect_batch` retrieves the aggregated
answers.  For convenience (and for the :class:`repro.core.engine.CrowdFusionEngine`
protocol) :meth:`collect` does both in one call.

Answers are generated from gold labels through the worker pool's Bernoulli
error model, so an experiment with a fixed seed is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.answers import Answer, AnswerSet
from repro.crowdsim.task import Task, TaskBatch
from repro.crowdsim.worker import WorkerPool
from repro.exceptions import PlatformError


@dataclass(frozen=True)
class PlatformStats:
    """Usage counters for one platform instance."""

    batches_published: int
    tasks_published: int
    answers_collected: int


class SimulatedPlatform:
    """Crowdsourcing platform simulator backed by gold labels and a worker pool.

    Parameters
    ----------
    ground_truth:
        Mapping from fact id to its gold true/false label.  Facts without a
        gold label cannot be asked (the simulator has no way to answer them).
    workers:
        The worker pool generating the (noisy) answers.
    difficulties:
        Optional per-fact difficulty in ``[0, 0.5]`` modelling hard statements
        (wrong order, misspelling, additional information — Section V-D).
    answers_per_task:
        Number of independent worker answers gathered per task; when greater
        than one the platform aggregates them by majority vote (ties are
        broken by the first answer), which is how real deployments trade
        money for accuracy.
    domains:
        Optional mapping from fact id to a domain name used to look up
        worker domain skills.
    """

    def __init__(
        self,
        ground_truth: Mapping[str, bool],
        workers: WorkerPool,
        difficulties: Optional[Mapping[str, float]] = None,
        answers_per_task: int = 1,
        domains: Optional[Mapping[str, str]] = None,
    ):
        if not ground_truth:
            raise PlatformError("the platform needs at least one gold-labelled fact")
        if answers_per_task <= 0:
            raise PlatformError(
                f"answers_per_task must be positive, got {answers_per_task}"
            )
        self._ground_truth = dict(ground_truth)
        self._workers = workers
        self._difficulties = dict(difficulties or {})
        self._answers_per_task = answers_per_task
        self._domains = dict(domains or {})
        self._batches: Dict[int, TaskBatch] = {}
        self._collected: Dict[int, AnswerSet] = {}
        self._next_batch_id = 1
        self._tasks_published = 0
        self._answers_collected = 0

    # -- two-step API -----------------------------------------------------------------

    def publish(self, fact_ids: Sequence[str]) -> int:
        """Publish one batch of tasks and return its batch id."""
        if not fact_ids:
            raise PlatformError("cannot publish an empty batch of tasks")
        unknown = [fact_id for fact_id in fact_ids if fact_id not in self._ground_truth]
        if unknown:
            raise PlatformError(
                f"cannot publish tasks for facts without gold labels: {unknown}"
            )
        tasks = tuple(
            Task(
                fact_id=fact_id,
                question=f"Is the statement {fact_id!r} true?",
                difficulty=self._difficulties.get(fact_id, 0.0),
                ground_truth=self._ground_truth[fact_id],
            )
            for fact_id in fact_ids
        )
        batch = TaskBatch(batch_id=self._next_batch_id, tasks=tasks)
        self._batches[batch.batch_id] = batch
        self._next_batch_id += 1
        self._tasks_published += len(tasks)
        return batch.batch_id

    def collect_batch(self, batch_id: int) -> AnswerSet:
        """Collect (and cache) the aggregated answers for a published batch."""
        if batch_id not in self._batches:
            raise PlatformError(f"unknown batch id {batch_id}")
        if batch_id in self._collected:
            return self._collected[batch_id]
        batch = self._batches[batch_id]
        answers: List[Answer] = []
        for task in batch:
            judgment, worker_id, confidence = self._aggregate_answers(task)
            answers.append(
                Answer(
                    fact_id=task.fact_id,
                    judgment=judgment,
                    worker_id=worker_id,
                    confidence=confidence,
                )
            )
        answer_set = AnswerSet(answers)
        self._collected[batch_id] = answer_set
        self._answers_collected += len(answers)
        return answer_set

    # -- one-step API (the engine's AnswerProvider protocol) ----------------------------

    def collect(self, task_ids: Sequence[str]) -> AnswerSet:
        """Publish a batch for ``task_ids`` and immediately collect its answers."""
        batch_id = self.publish(task_ids)
        return self.collect_batch(batch_id)

    # -- internals -----------------------------------------------------------------------

    def _aggregate_answers(self, task: Task) -> Tuple[bool, str, float]:
        """Gather ``answers_per_task`` judgments and majority-vote them."""
        truth = self._ground_truth[task.fact_id]
        domain = self._domains.get(task.fact_id)
        votes: List[bool] = []
        worker_ids: List[str] = []
        for _ in range(self._answers_per_task):
            worker_id, judgment = self._workers.answer_task(task, truth, domain=domain)
            votes.append(judgment)
            worker_ids.append(worker_id)
        positives = sum(votes)
        negatives = len(votes) - positives
        if positives == negatives:
            judgment = votes[0]
        else:
            judgment = positives > negatives
        confidence = max(positives, negatives) / len(votes)
        label = worker_ids[0] if len(worker_ids) == 1 else f"vote({len(worker_ids)})"
        return judgment, label, confidence

    # -- inspection ------------------------------------------------------------------------

    @property
    def ground_truth(self) -> Dict[str, bool]:
        """A copy of the gold labels the simulator answers from."""
        return dict(self._ground_truth)

    def stats(self) -> PlatformStats:
        """Return usage counters (batches, tasks, answers)."""
        return PlatformStats(
            batches_published=len(self._batches),
            tasks_published=self._tasks_published,
            answers_collected=self._answers_collected,
        )
