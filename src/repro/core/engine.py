"""The multi-round CrowdFusion refinement engine (Figure 1 of the paper).

One *round* is a select → publish → collect → merge cycle: a task set of at
most ``k`` facts is chosen by the configured selector, pushed to a crowd
(real platform or simulator), the received answers are merged into the joint
output distribution by Bayes' rule, and the loop repeats while budget
remains.  The engine is agnostic to where the answers come from: anything
that maps a tuple of fact ids to an :class:`~repro.core.answers.AnswerSet`
will do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.merging import merge_answers
from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector
from repro.core.utility import pws_quality
from repro.exceptions import BudgetError


class AnswerProvider(Protocol):
    """Anything able to answer a batch of "is this fact true?" tasks.

    Both :class:`repro.crowdsim.platform.SimulatedPlatform` and plain
    functions satisfy this protocol.
    """

    def collect(self, task_ids: Sequence[str]) -> AnswerSet:  # pragma: no cover - protocol
        """Return one aggregated crowd judgment per requested fact."""
        ...


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one select–collect–merge round."""

    round_index: int
    task_ids: Tuple[str, ...]
    answers: AnswerSet
    utility_before: float
    utility_after: float
    selection_objective: float
    selection_seconds: float
    cumulative_cost: int
    #: Full selector bookkeeping (evaluations, cache hits, lazy skips, …);
    #: ``selection_seconds`` above is kept as a stable convenience alias.
    selection_stats: SelectionStats = field(default_factory=SelectionStats)

    @property
    def utility_gain(self) -> float:
        """Realised utility improvement of this round (may be negative)."""
        return self.utility_after - self.utility_before


@dataclass
class EngineResult:
    """Final state and full history of one CrowdFusion run."""

    initial_distribution: JointDistribution
    final_distribution: JointDistribution
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def total_cost(self) -> int:
        """Total number of tasks asked over all rounds."""
        return sum(len(record.task_ids) for record in self.rounds)

    @property
    def final_utility(self) -> float:
        """PWS-quality of the final distribution."""
        return pws_quality(self.final_distribution)

    @property
    def initial_utility(self) -> float:
        """PWS-quality of the prior distribution."""
        return pws_quality(self.initial_distribution)

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Final per-fact true/false decisions."""
        return self.final_distribution.predicted_labels(threshold)

    def utility_curve(self) -> List[Tuple[int, float]]:
        """``(cumulative cost, utility)`` points, starting from the prior."""
        curve = [(0, self.initial_utility)]
        curve.extend(
            (record.cumulative_cost, record.utility_after) for record in self.rounds
        )
        return curve


class CrowdFusionEngine:
    """Budgeted, multi-round crowdsourced refinement of a fusion result.

    Parameters
    ----------
    selector:
        Task-selection strategy (any :class:`TaskSelector`).
    crowd:
        Crowd accuracy model used both for selection and for Bayesian merging.
    budget:
        Total number of tasks that may be asked (``B`` in the paper).
    tasks_per_round:
        Maximum number of tasks per round (``k``); the last round may be
        smaller if the remaining budget is smaller.
    reselect_asked_facts:
        Whether facts asked in earlier rounds may be selected again.  The
        paper allows re-asking (the posterior keeps them uncertain if the
        crowd disagreed with the prior), which is the default.
    """

    def __init__(
        self,
        selector: TaskSelector,
        crowd: CrowdModel,
        budget: int,
        tasks_per_round: int,
        reselect_asked_facts: bool = True,
    ):
        if budget <= 0:
            raise BudgetError(f"budget must be positive, got {budget}")
        if tasks_per_round <= 0:
            raise BudgetError(f"tasks_per_round must be positive, got {tasks_per_round}")
        self._selector = selector
        self._crowd = crowd
        self._budget = budget
        self._tasks_per_round = tasks_per_round
        self._reselect = reselect_asked_facts

    @property
    def budget(self) -> int:
        """Total task budget ``B``."""
        return self._budget

    @property
    def tasks_per_round(self) -> int:
        """Per-round task cap ``k``."""
        return self._tasks_per_round

    def run(
        self,
        distribution: JointDistribution,
        answer_provider: "AnswerProvider | Callable[[Sequence[str]], AnswerSet]",
        round_callback: Optional[Callable[[RoundRecord, JointDistribution], None]] = None,
    ) -> EngineResult:
        """Execute rounds until the budget is exhausted or nothing remains to ask.

        Parameters
        ----------
        distribution:
            Prior joint output distribution (output of a machine-only fusion
            method, or a uniform / independent prior).
        answer_provider:
            Object with a ``collect(task_ids)`` method, or a plain callable
            taking the task ids and returning an :class:`AnswerSet`.
        round_callback:
            Optional hook invoked after each round with the round record and
            the updated distribution (used by the experiment runner to track
            quality curves).
        """
        collect = getattr(answer_provider, "collect", None)
        if collect is None:
            collect = answer_provider

        result = EngineResult(
            initial_distribution=distribution, final_distribution=distribution
        )
        current = distribution
        asked: set = set()
        remaining_budget = self._budget
        round_index = 0

        while remaining_budget > 0:
            k = min(self._tasks_per_round, remaining_budget, current.num_facts)
            exclude: Tuple[str, ...] = ()
            if not self._reselect:
                exclude = tuple(asked)
                if len(exclude) >= current.num_facts:
                    break
            selection: SelectionResult = self._selector.select(
                current, self._crowd, k, exclude=exclude
            )
            if not selection.task_ids:
                # No task offers positive expected gain: stop early.
                break

            answers = collect(selection.task_ids)
            utility_before = pws_quality(current)
            current = merge_answers(current, answers, self._crowd)
            utility_after = pws_quality(current)

            remaining_budget -= len(selection.task_ids)
            asked.update(selection.task_ids)
            round_index += 1
            record = RoundRecord(
                round_index=round_index,
                task_ids=selection.task_ids,
                answers=answers,
                utility_before=utility_before,
                utility_after=utility_after,
                selection_objective=selection.objective,
                selection_seconds=selection.stats.elapsed_seconds,
                cumulative_cost=self._budget - remaining_budget,
                selection_stats=selection.stats,
            )
            result.rounds.append(record)
            if round_callback is not None:
                round_callback(record, current)

        result.final_distribution = current
        return result
