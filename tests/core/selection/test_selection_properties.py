"""Property-based tests for selection invariants.

The key invariants the paper relies on:

* the objective ``H(T)`` is monotone and submodular in the task set;
* all accelerated greedy variants select the same tasks as plain greedy;
* the greedy objective never exceeds OPT and stays within ``(1 − 1/e)`` of it.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import (
    BruteForceSelector,
    GreedySelector,
    PrunedPreprocessingGreedySelector,
    PruningGreedySelector,
)


@st.composite
def small_distributions(draw, max_facts=4):
    n = draw(st.integers(min_value=2, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=2,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
            min_size=len(support),
            max_size=len(support),
        )
    )
    return JointDistribution(fact_ids, dict(zip(support, masses)))


accuracies = st.sampled_from([0.6, 0.7, 0.8, 0.9, 1.0])


class TestObjectiveProperties:
    @given(small_distributions(), accuracies)
    @settings(max_examples=60, deadline=None)
    def test_monotonicity_adding_a_task_never_lowers_entropy(self, dist, accuracy):
        crowd = CrowdModel(accuracy)
        fact_ids = list(dist.fact_ids)
        base = crowd.task_entropy(dist, fact_ids[:1])
        extended = crowd.task_entropy(dist, fact_ids[:2])
        assert extended >= base - 1e-9

    @given(small_distributions(max_facts=4), accuracies)
    @settings(max_examples=40, deadline=None)
    def test_submodularity_on_fact_triples(self, dist, accuracy):
        crowd = CrowdModel(accuracy)
        ids = list(dist.fact_ids)
        if len(ids) < 3:
            return
        a, b, c = ids[0], ids[1], ids[2]
        # Gain of adding c to {a} must be at least the gain of adding c to {a, b}.
        gain_small = crowd.task_entropy(dist, [a, c]) - crowd.task_entropy(dist, [a])
        gain_large = crowd.task_entropy(dist, [a, b, c]) - crowd.task_entropy(dist, [a, b])
        assert gain_small >= gain_large - 1e-9

    @given(small_distributions(), accuracies)
    @settings(max_examples=60, deadline=None)
    def test_task_entropy_bounded_by_task_count(self, dist, accuracy):
        crowd = CrowdModel(accuracy)
        ids = list(dist.fact_ids)[:2]
        assert crowd.task_entropy(dist, ids) <= len(ids) + 1e-9


class TestSelectorEquivalence:
    @given(small_distributions(), accuracies, st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_accelerated_variants_match_plain_greedy(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        plain = GreedySelector().select(dist, crowd, k)
        pruned = PruningGreedySelector().select(dist, crowd, k)
        fast = PrunedPreprocessingGreedySelector().select(dist, crowd, k)
        assert pruned.task_ids == plain.task_ids
        assert fast.task_ids == plain.task_ids
        assert pruned.objective == pytest.approx(plain.objective, abs=1e-9)
        assert fast.objective == pytest.approx(plain.objective, abs=1e-9)

    @given(small_distributions(), accuracies, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_greedy_vs_opt_bounds(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        greedy = GreedySelector().select(dist, crowd, k)
        opt = BruteForceSelector().select(dist, crowd, k).objective
        assert greedy.objective <= opt + 1e-9
        if len(greedy.task_ids) == min(k, dist.num_facts):
            # The (1 − 1/e) guarantee applies when greedy spends the full
            # budget; an early stop means the extra tasks had no net value.
            assert greedy.objective >= (1 - 1 / math.e) * opt - 1e-9
