"""Figure 3 — effect of the per-round task count k on quality.

The paper runs the greedy selector and the random baseline with k = 1..6 over
the full book collection (budget 60 per book).  Expected shape:

* for the greedy selector, smaller k reaches higher quality per unit budget
  (each round re-targets the most informative facts given the answers so far);
* for random selection the ordering reverses (larger k covers a wider range
  of facts, which is all an uninformed selector can hope for);
* all greedy settings beat all random settings.

We reproduce the comparison with k ∈ {1, 2, 3, 6} at Pc = 0.8 on the synthetic
corpus with a reduced per-book budget.
"""

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.reporting import format_series, format_table

from _bench_utils import write_result

BUDGET = 30
ACCURACY = 0.8
K_VALUES = (1, 2, 3, 6)
SELECTORS = ("greedy_prune_pre", "random")

_RESULTS = {}


def _run(problems, selector, k):
    config = ExperimentConfig(
        selector=selector,
        k=k,
        budget_per_entity=BUDGET,
        worker_accuracy=ACCURACY,
        use_difficulties=True,
        seed=29,
    )
    return run_quality_experiment(problems, config)


CASES = [(selector, k) for selector in SELECTORS for k in K_VALUES]


@pytest.mark.parametrize("selector,k", CASES, ids=[f"{s}-k{k}" for s, k in CASES])
def test_k_setting_curve(benchmark, book_problems, selector, k):
    """Benchmark one (selector, k) refinement run over the whole corpus."""
    result = benchmark.pedantic(
        _run, args=(book_problems, selector, k), rounds=1, iterations=1, warmup_rounds=0
    )
    _RESULTS[(selector, k)] = result
    assert result.final_point.cost > 0


def test_fig3_report_and_shape(benchmark):
    """Persist the Figure-3 series and check the k-ordering claims."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < len(CASES):
        pytest.skip("curve benchmarks did not run")

    lines = []
    rows = []
    for selector, k in CASES:
        result = _RESULTS[(selector, k)]
        lines.append(
            format_series(
                f"{selector} k={k} F1", list(zip(result.costs(), result.f1_series())), 3
            )
        )
        lines.append(
            format_series(
                f"{selector} k={k} utility",
                list(zip(result.costs(), result.utility_series())),
                2,
            )
        )
        rows.append(
            [selector, k, result.final_point.f1, result.final_point.utility]
        )
    summary = format_table(
        ["selector", "k", "final F1", "final utility"], rows, float_format="{:.3f}"
    )
    write_result("fig3_k_settings.txt", summary + "\n\n" + "\n".join(lines))

    greedy_final = {k: _RESULTS[("greedy_prune_pre", k)].final_point for k in K_VALUES}
    random_final = {k: _RESULTS[("random", k)].final_point for k in K_VALUES}

    # Informed selection beats random selection for every k (utility).
    for k in K_VALUES:
        assert greedy_final[k].utility > random_final[k].utility

    # Small k is at least as good as the largest k for the greedy selector.
    assert greedy_final[1].utility >= greedy_final[6].utility - 2.0
    assert greedy_final[1].f1 >= greedy_final[6].f1 - 0.03

    # For random selection the trend reverses (or at worst flattens): the
    # largest k should not be clearly worse than the smallest.
    assert random_final[6].f1 >= random_final[1].f1 - 0.05
