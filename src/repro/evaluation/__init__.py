"""Evaluation harness: metrics, experiment runners, timing and reporting.

These modules regenerate the paper's evaluation artefacts: per-round quality
curves (Figures 2–4), the selection-time comparison (Table V) and the error
analysis (Section V-D).
"""

from repro.evaluation.allocation import allocate_budget, allocation_summary
from repro.evaluation.experiment import (
    EntityProblem,
    ExperimentConfig,
    ExperimentResult,
    QualityPoint,
    build_problems,
    run_quality_experiment,
)
from repro.evaluation.metrics import (
    ClassificationScores,
    classification_scores,
    total_utility,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.timing import TimingRow, measure_selection_times

__all__ = [
    "ClassificationScores",
    "EntityProblem",
    "allocate_budget",
    "allocation_summary",
    "ExperimentConfig",
    "ExperimentResult",
    "QualityPoint",
    "TimingRow",
    "build_problems",
    "classification_scores",
    "format_series",
    "format_table",
    "measure_selection_times",
    "run_quality_experiment",
    "total_utility",
]
