"""Core CrowdFusion model: facts, joint distributions, crowd model, selection.

This subpackage implements the paper's primary contribution:

* the probabilistic data model (facts + joint output distribution),
* the PWS-quality utility function,
* the noisy-crowd answer model (uniform or heterogeneous per-task
  channels) and Bayesian answer merging,
* the task-selection algorithms (OPT, greedy, pruning, preprocessing,
  random, query-based), and
* the multi-round budgeted refinement engine.
"""

from repro.core.answers import Answer, AnswerSet
from repro.core.assignment import Assignment
from repro.core.crowd import (
    CalibratedCrowdModel,
    ChannelModel,
    CrowdModel,
    DifficultyAdjustedCrowdModel,
    PerFactChannelModel,
    RecalibratedChannelModel,
)
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine, EngineResult, RoundRecord
from repro.core.facts import Fact, FactSet
from repro.core.merging import merge_answers
from repro.core.query import Query
from repro.core.utility import crowd_entropy, pws_quality, utility_gain

__all__ = [
    "Answer",
    "AnswerSet",
    "Assignment",
    "CalibratedCrowdModel",
    "ChannelModel",
    "CrowdModel",
    "DifficultyAdjustedCrowdModel",
    "PerFactChannelModel",
    "RecalibratedChannelModel",
    "CrowdFusionEngine",
    "EngineResult",
    "Fact",
    "FactSet",
    "JointDistribution",
    "Query",
    "RoundRecord",
    "crowd_entropy",
    "merge_answers",
    "pws_quality",
    "utility_gain",
]
