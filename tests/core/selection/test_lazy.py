"""Unit tests for the CELF-style lazy greedy selector."""

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import GreedySelector, LazyGreedySelector, get_selector
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import SelectionError


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


def random_sparse_distribution(num_facts, support, seed):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=min(support, 1 << num_facts), replace=False)
    probs = rng.uniform(0.05, 1.0, size=len(masks))
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(fact_ids, dict(zip((int(m) for m in masks), probs)))


class TestLazyGreedyBasics:
    def test_registered(self):
        assert isinstance(get_selector("greedy_lazy"), LazyGreedySelector)

    def test_matches_plain_greedy_on_running_example(self, crowd):
        dist = running_example_distribution()
        for k in range(1, 5):
            plain = GreedySelector().select(dist, crowd, k)
            lazy = LazyGreedySelector().select(dist, crowd, k)
            assert lazy.task_ids == plain.task_ids
            assert lazy.objective == pytest.approx(plain.objective, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_plain_greedy_on_random_distributions(self, crowd, seed):
        dist = random_sparse_distribution(num_facts=9, support=80, seed=seed)
        plain = GreedySelector().select(dist, crowd, 4)
        lazy = LazyGreedySelector().select(dist, crowd, 4)
        assert lazy.task_ids == plain.task_ids
        assert lazy.objective == pytest.approx(plain.objective, abs=1e-9)

    def test_invalid_k_rejected(self, crowd):
        dist = running_example_distribution()
        with pytest.raises(SelectionError):
            LazyGreedySelector().select(dist, crowd, 0)

    def test_early_stop_on_certain_facts(self, crowd):
        dist = JointDistribution.independent({"a": 1.0, "b": 0.5, "c": 1.0})
        result = LazyGreedySelector().select(dist, crowd, 3)
        assert result.task_ids == ("b",)


class TestLazyEvaluationSavings:
    def test_skips_evaluations_on_wide_fact_sets(self, crowd):
        """Past the first iteration, most candidates never get re-scored."""
        dist = random_sparse_distribution(num_facts=12, support=300, seed=7)
        plain = GreedySelector().select(dist, crowd, 5)
        lazy = LazyGreedySelector().select(dist, crowd, 5)
        assert lazy.task_ids == plain.task_ids
        assert lazy.stats.candidate_evaluations < plain.stats.candidate_evaluations
        assert lazy.stats.skipped_evaluations > 0

    def test_first_iteration_scores_every_candidate(self, crowd):
        dist = running_example_distribution()
        result = LazyGreedySelector().select(dist, crowd, 1)
        assert result.stats.candidate_evaluations == dist.num_facts
        assert result.stats.skipped_evaluations == 0

    def test_evaluation_accounting_is_consistent(self, crowd):
        dist = random_sparse_distribution(num_facts=10, support=120, seed=3)
        k = 4
        plain = GreedySelector().select(dist, crowd, k)
        lazy = LazyGreedySelector().select(dist, crowd, k)
        # Same number of iterations, and every candidate in every iteration is
        # either evaluated or lazily skipped.
        assert lazy.stats.iterations == plain.stats.iterations
        assert (
            lazy.stats.candidate_evaluations + lazy.stats.skipped_evaluations
            == plain.stats.candidate_evaluations
        )

    def test_cache_hits_reported(self, crowd):
        dist = random_sparse_distribution(num_facts=8, support=60, seed=5)
        result = LazyGreedySelector().select(dist, crowd, 3)
        assert result.stats.cache_hits > 0
