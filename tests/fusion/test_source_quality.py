"""Unit tests for source-quality estimation against gold labels."""

import pytest

from repro.exceptions import FusionError
from repro.fusion.claims import ClaimDatabase
from repro.fusion.source_quality import (
    domain_reliability_split,
    source_accuracy,
    source_error_rates,
)


def database_with_gold():
    database = ClaimDatabase.from_observations(
        [
            # s1 is right about textbooks, wrong about non-textbooks (the
            # eCampus.com pattern from the paper's introduction).
            ("s1", "tb1", "author_list", "right-tb1"),
            ("s1", "tb2", "author_list", "right-tb2"),
            ("s1", "nb1", "author_list", "wrong-nb1"),
            ("s1", "nb2", "author_list", "wrong-nb2"),
            # s2 is always right; s3 always wrong.
            ("s2", "tb1", "author_list", "right-tb1"),
            ("s2", "nb1", "author_list", "right-nb1"),
            ("s3", "tb2", "author_list", "wrong-tb2"),
            ("s3", "nb2", "author_list", "right-nb2x"),
        ]
    )
    gold = {}
    for claim in database.claims():
        gold[claim.claim_id] = claim.value.startswith("right")
    domain_of = {"tb1": "textbook", "tb2": "textbook", "nb1": "non-textbook", "nb2": "non-textbook"}
    return database, gold, domain_of


class TestSourceAccuracy:
    def test_overall_accuracy(self):
        database, gold, _ = database_with_gold()
        assert source_accuracy(database, gold, "s1") == pytest.approx(0.5)
        assert source_accuracy(database, gold, "s2") == pytest.approx(1.0)
        assert source_accuracy(database, gold, "s3") == pytest.approx(0.5)

    def test_domain_restricted_accuracy(self):
        database, gold, domain_of = database_with_gold()
        assert source_accuracy(
            database, gold, "s1", domain_of=domain_of, domain="textbook"
        ) == pytest.approx(1.0)
        assert source_accuracy(
            database, gold, "s1", domain_of=domain_of, domain="non-textbook"
        ) == pytest.approx(0.0)

    def test_domain_filter_requires_domain_map(self):
        database, gold, _ = database_with_gold()
        with pytest.raises(FusionError):
            source_accuracy(database, gold, "s1", domain="textbook")

    def test_source_without_gold_claims_raises(self):
        database, _, _ = database_with_gold()
        with pytest.raises(FusionError):
            source_accuracy(database, {}, "s1")


class TestSourceErrorRates:
    def test_error_rates_complement_accuracy(self):
        database, gold, _ = database_with_gold()
        rates = source_error_rates(database, gold)
        assert rates["s1"] == pytest.approx(0.5)
        assert rates["s2"] == pytest.approx(0.0)

    def test_sources_without_gold_omitted(self):
        database, gold, _ = database_with_gold()
        rates = source_error_rates(database, {"c1": gold["c1"]})
        assert "s3" not in rates


class TestDomainReliabilitySplit:
    def test_split_reproduces_ecampus_pattern(self):
        database, gold, domain_of = database_with_gold()
        breakdown = domain_reliability_split(database, gold, domain_of, "s1")
        assert breakdown["textbook"] == (2, pytest.approx(1.0))
        assert breakdown["non-textbook"] == (2, pytest.approx(0.0))

    def test_missing_domains_are_skipped(self):
        database, gold, domain_of = database_with_gold()
        breakdown = domain_reliability_split(
            database, gold, {"tb1": "textbook"}, "s2"
        )
        assert set(breakdown) == {"textbook"}
