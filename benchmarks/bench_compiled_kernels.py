"""Compiled-kernel and packed wide-fact benchmarks (``compiled/*``,
``wide_facts/*``).

Two claims of the kernel ladder are enforced here, each as a recorded
scenario in ``benchmarks/results/BENCH_selection.json`` (schema v3 — every
row carries the ``kernel`` tier it ran on):

* ``wide_facts/*`` — a 128-fact corpus on packed uint64 bit planes must beat
  the legacy object-dtype (Python-int) mask engine by at least
  ``MIN_WIDE_FACTS_SPEEDUP`` on one greedy round, with identical selections.
  Asserted on every host: both paths are pure numpy + Python, no optional
  dependency involved.
* ``compiled/*`` — the numba-compiled fused scan must beat the numpy tier by
  at least ``MIN_COMPILED_SPEEDUP`` per greedy round at a ``2^20``-row
  support, with identical selections.  The floor is asserted only where
  numba is importable; numba-less hosts skip (the ladder's degradation path
  is covered by the unit suites instead).
"""

import time

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.greedy import run_greedy_on_engine
from repro.core.kernels import numba_available, resolve_kernels, warmup
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution

from bench_selection_hotpath import _record_scenarios, best_of

ACCURACY = 0.8
SEED = 5

#: Packed planes vs. the object-dtype engine on a 128-fact corpus: the packed
#: path replaces per-row Python big-int bit extraction with vectorized word
#: ops, so the floor holds on any host (measured ~6-7x).
MIN_WIDE_FACTS_SPEEDUP = 5.0
WIDE_FACTS = 128
WIDE_SUPPORT = 1 << 15

#: The fused compiled scan vs. the composed numpy primitives, per greedy
#: round at the scale support.  Only asserted where numba can actually JIT.
MIN_COMPILED_SPEEDUP = 3.0
SCALE_FACTS = 48
SCALE_SUPPORT = 1 << 20

needs_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not importable (or JIT disabled)"
)


def _scale_distribution(num_facts, support, seed=SEED):
    return generate_scale_distribution(
        ScaleCorpusConfig(num_facts=num_facts, support_size=support, seed=seed)
    )


def _one_round(distribution, crowd, *, kernel="auto", packed=None, k=1):
    engine = EntropyEngine(distribution, crowd, kernel=kernel, packed=packed)
    engine.warmup_kernels()
    started = time.perf_counter()
    result = run_greedy_on_engine(engine, k, distribution.fact_ids)
    return time.perf_counter() - started, result


def test_wide_facts_packed_beats_object_path():
    """128 facts, one greedy round: packed planes vs. the object-dtype engine."""
    distribution = _scale_distribution(WIDE_FACTS, WIDE_SUPPORT)
    crowd = CrowdModel(ACCURACY)

    packed_seconds = object_seconds = float("inf")
    packed_result = object_result = None
    # Fresh engines per repeat so both paths pay their bit-column extraction
    # inside the timed region — that extraction is exactly what packing fixes.
    for _ in range(3):
        seconds, packed_result = _one_round(distribution, crowd, packed=True)
        packed_seconds = min(packed_seconds, seconds)
        seconds, object_result = _one_round(distribution, crowd, packed=False)
        object_seconds = min(object_seconds, seconds)

    assert packed_result.task_ids == object_result.task_ids
    assert abs(packed_result.objective - object_result.objective) <= 1e-9
    speedup = object_seconds / packed_seconds

    entry = {
        "suite": "wide_facts",
        "description": (
            f"One greedy round (k=1, all {WIDE_FACTS} candidates) on a "
            f"{WIDE_FACTS}-fact, 2^15-row corpus: packed uint64 bit planes "
            "vs. the legacy object-dtype Python-int mask engine.  Identical "
            "selections asserted; the floor holds on any host (no optional "
            "dependency)."
        ),
        "num_facts": WIDE_FACTS,
        "k": 1,
        "support": WIDE_SUPPORT,
        "packed_seconds": packed_seconds,
        "object_seconds": object_seconds,
        "speedup_packed": speedup,
        "identical_selections": True,
        "selected": list(packed_result.task_ids),
    }
    _record_scenarios(
        {f"wide_facts/n{WIDE_FACTS}_s{WIDE_SUPPORT}_packed_vs_object": entry}
    )
    assert speedup >= MIN_WIDE_FACTS_SPEEDUP, entry


@needs_numba
def test_compiled_smoke_identical_selections():
    """CI-sized compiled-tier exercise: tiny corpus, equivalence only."""
    distribution = _scale_distribution(20, 1 << 10, seed=SEED + 1)
    crowd = CrowdModel(ACCURACY)
    warmup(resolve_kernels("compiled"))
    numpy_seconds, numpy_result = _one_round(distribution, crowd, kernel="numpy", k=3)
    compiled_seconds, compiled_result = _one_round(
        distribution, crowd, kernel="compiled", k=3
    )
    assert compiled_result.task_ids == numpy_result.task_ids
    assert abs(compiled_result.objective - numpy_result.objective) <= 1e-9

    entry = {
        "suite": "compiled",
        "kernel": "compiled",
        "description": (
            "CI smoke: three greedy rounds on a 2^10-row corpus, compiled "
            "vs. numpy tier.  Asserts only the equivalence contract (no "
            "speedup floor at this size)."
        ),
        "num_facts": 20,
        "k": 3,
        "support": 1 << 10,
        "numpy_seconds": numpy_seconds,
        "compiled_seconds": compiled_seconds,
        "speedup_compiled": numpy_seconds / compiled_seconds,
        "identical_selections": True,
    }
    _record_scenarios({"compiled/smoke_n20_s1024": entry})


@pytest.mark.slow
@needs_numba
def test_compiled_scan_beats_numpy_at_scale():
    """The headline: >=3x per-round speedup at a 2^20-row support."""
    distribution = _scale_distribution(SCALE_FACTS, SCALE_SUPPORT)
    crowd = CrowdModel(ACCURACY)
    k = 3
    # JIT compilation happens outside the timed region, exactly as the
    # runtime does it (warmup in the parent before any scan or fork).
    warmup(resolve_kernels("compiled"))

    numpy_engine = EntropyEngine(distribution, crowd, kernel="numpy")
    compiled_engine = EntropyEngine(distribution, crowd, kernel="compiled")
    numpy_result = run_greedy_on_engine(numpy_engine, k, distribution.fact_ids)
    compiled_result = run_greedy_on_engine(compiled_engine, k, distribution.fact_ids)
    assert compiled_result.task_ids == numpy_result.task_ids
    assert abs(compiled_result.objective - numpy_result.objective) <= 1e-9

    def timed(kernel):
        def run():
            engine = EntropyEngine(distribution, crowd, kernel=kernel)
            run_greedy_on_engine(engine, k, distribution.fact_ids)
        return best_of(run, repeats=3)

    numpy_seconds = timed("numpy")
    compiled_seconds = timed("compiled")
    speedup = numpy_seconds / compiled_seconds

    entry = {
        "suite": "compiled",
        "kernel": "compiled",
        "description": (
            f"{k} greedy rounds over all {SCALE_FACTS} candidates at a 2^20-"
            "row support: the fused njit per-candidate scan vs. the composed "
            "numpy primitives.  Identical selections asserted; the speedup "
            "floor is asserted only on hosts where numba can JIT."
        ),
        "num_facts": SCALE_FACTS,
        "k": k,
        "support": SCALE_SUPPORT,
        "numpy_seconds": numpy_seconds,
        "compiled_seconds": compiled_seconds,
        "numpy_seconds_per_round": numpy_seconds / k,
        "compiled_seconds_per_round": compiled_seconds / k,
        "speedup_compiled": speedup,
        "identical_selections": True,
        "selected": list(compiled_result.task_ids),
    }
    _record_scenarios(
        {f"compiled/scale_n{SCALE_FACTS}_s{SCALE_SUPPORT}_k{k}": entry}
    )
    assert speedup >= MIN_COMPILED_SPEEDUP, entry


def test_reference_tier_records_wide_scan():
    """Record the reference tier on a tiny wide corpus (trend tracking only).

    The reference tier exists for correctness work, not speed; recording a
    small scenario keeps its cost visible in the artifact without gating.
    """
    distribution = _scale_distribution(WIDE_FACTS, 1 << 9, seed=SEED + 2)
    crowd = CrowdModel(ACCURACY)
    reference_seconds, reference_result = _one_round(
        distribution, crowd, kernel="reference"
    )
    numpy_seconds, numpy_result = _one_round(distribution, crowd, kernel="numpy")
    assert reference_result.task_ids == numpy_result.task_ids
    assert abs(reference_result.objective - numpy_result.objective) <= 1e-9

    entry = {
        "suite": "compiled",
        "kernel": "reference",
        "description": (
            "One greedy round on a tiny 128-fact corpus under the reference "
            "tier (the compiled loop bodies as plain Python) vs. numpy — "
            "equivalence gate plus trend tracking, no floor."
        ),
        "num_facts": WIDE_FACTS,
        "k": 1,
        "support": 1 << 9,
        "reference_seconds": reference_seconds,
        "numpy_seconds": numpy_seconds,
        "identical_selections": True,
    }
    _record_scenarios({"compiled/reference_n128_s512": entry})
