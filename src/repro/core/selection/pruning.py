"""Greedy selection with the Theorem-3 pruning rule.

Section III-E of the paper: while scanning candidates within one greedy
iteration, a fact ``f_j`` can be discarded *for the rest of the whole
selection* if even the most optimistic completion of a task set containing it
cannot beat the best candidate already seen.  The optimistic completion bound
uses sub-additivity of entropy:

``H(T ∪ {f_j} ∪ S) ≤ H(T ∪ {f_j}) + H(S) ≤ H(T ∪ {f_j}) + |S|``

where ``|S| = k − |T| − 1`` is the number of tasks still to be chosen and each
binary answer variable carries at most one bit.  (The paper prints the slack
as ``log(k − |T| − 1)``; the dimensionally sound bound for binary answers is
``k − |T| − 1`` bits, which is what we use — it is never smaller, so pruning
remains safe and the selected set is identical to plain greedy.)

The scan itself runs on the shared vectorized incremental engine — fresh or
borrowed from a refinement session; see
:func:`repro.core.selection.greedy.run_greedy_on_engine`.
"""

from __future__ import annotations

from repro.core.selection.greedy import GreedySelector


class PruningGreedySelector(GreedySelector):
    """Algorithm 1 plus permanent candidate pruning (Theorem 3)."""

    name = "greedy_prune"

    use_pruning = True
