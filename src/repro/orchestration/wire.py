"""Wire protocol of the multi-host cluster orchestrator.

The coordinator and its shard workers speak the same JSON-lines framing as
the refinement service transport (:mod:`repro.service.transport`): one JSON
object per ``\\n``-terminated line, bounded by the service's
``MAX_LINE_BYTES``.  Every message carries a ``"type"`` discriminator and is
defined here as a frozen dataclass, so both sides share one source of truth
for field names and the codec refuses unknown or malformed messages loudly
(``WireProtocolError``) instead of guessing.

Message flow::

    worker                         coordinator
    ------                         -----------
    Hello(worker, fingerprint) ->
                                <- Welcome(epoch, heartbeat_s, lease_ttl_s)
                                <- LeaseGrant(lease, epoch, start, stop)
    Heartbeat(worker, lease, epoch) ->        (repeating, daemon thread)
    EntityResult(worker, lease, epoch, index, ok, payload|error) ->
                                <- LeaseRevoked(lease, epoch, reason)   (fencing)
                                <- Shutdown(reason)                     (sweep done)
                                <- WireError(code, message, retry_safe) (refusal)

Fencing is carried entirely by ``(lease, epoch)``: results and heartbeats
quoting a lease the coordinator no longer considers active — or an epoch
older than the lease's grant epoch — are rejected and never journalled.

:class:`MessageStream` is the blocking socket wrapper both sides use.  Sends
are serialised under a lock because a worker's heartbeat thread and its main
loop share one socket; the ``wire_send`` fault point can tear a send in half
and abort the connection (:mod:`repro.testing.faults` directive ``"drop"``),
which is what a cut network looks like from the peer's side.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Type

from repro.exceptions import OrchestrationError
from repro.service.api import MAX_LINE_BYTES
from repro.testing import faults


class WireProtocolError(OrchestrationError):
    """A peer sent bytes this protocol cannot interpret."""


class ConnectionLost(OrchestrationError):
    """The peer vanished mid-conversation (EOF, reset, injected drop)."""


@dataclass(frozen=True)
class Hello:
    """Worker's opening handshake: who it is and which sweep it was built for.

    ``fingerprint`` is the digest of the run manifest fingerprint — workers
    rebuild problems and config from their own CLI flags, so the digest is
    how a worker pointed at the wrong sweep is refused instead of silently
    computing different trajectories.
    """

    worker: str
    fingerprint: str


@dataclass(frozen=True)
class Welcome:
    """Coordinator's handshake reply: current epoch and liveness contract."""

    epoch: int
    heartbeat_s: float
    lease_ttl_s: float


@dataclass(frozen=True)
class LeaseGrant:
    """A contiguous entity-index range ``[start, stop)`` leased to one worker."""

    lease: str
    epoch: int
    start: int
    stop: int


@dataclass(frozen=True)
class Heartbeat:
    """Worker liveness beacon; keeps its lease from expiring."""

    worker: str
    lease: str
    epoch: int


@dataclass(frozen=True)
class EntityResult:
    """One finished entity: the trajectory payload, or the failure message."""

    worker: str
    lease: str
    epoch: int
    index: int
    ok: bool
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class LeaseRevoked:
    """Coordinator fenced a lease; the worker must drop its remaining range."""

    lease: str
    epoch: int
    reason: str


@dataclass(frozen=True)
class Shutdown:
    """Sweep over (or coordinator exiting): the worker should disconnect."""

    reason: str


@dataclass(frozen=True)
class WireError:
    """Typed refusal, mirroring the service error payload shape."""

    code: str
    message: str
    retry_safe: bool = False


_MESSAGE_TYPES: Dict[str, Type[Any]] = {
    "hello": Hello,
    "welcome": Welcome,
    "lease_grant": LeaseGrant,
    "heartbeat": Heartbeat,
    "entity_result": EntityResult,
    "lease_revoked": LeaseRevoked,
    "shutdown": Shutdown,
    "error": WireError,
}

_TYPE_NAMES: Dict[Type[Any], str] = {cls: name for name, cls in _MESSAGE_TYPES.items()}


def encode_message(message: Any) -> bytes:
    """One wire line for ``message``: compact JSON plus the trailing newline."""
    name = _TYPE_NAMES.get(type(message))
    if name is None:
        raise WireProtocolError(f"not a wire message: {type(message).__name__}")
    body = {"type": name}
    body.update(dataclasses.asdict(message))
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_message(line: bytes) -> Any:
    """Parse one wire line back into its dataclass; loud on anything else."""
    try:
        body = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise WireProtocolError(f"malformed wire line: {error}")
    if not isinstance(body, dict):
        raise WireProtocolError("a wire message must be a JSON object")
    name = body.pop("type", None)
    cls = _MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireProtocolError(f"unknown wire message type {name!r}")
    fields = {field.name for field in dataclasses.fields(cls)}
    unknown = set(body) - fields
    if unknown:
        raise WireProtocolError(
            f"unknown fields {sorted(unknown)} in wire message {name!r}"
        )
    try:
        return cls(**body)
    except TypeError as error:
        raise WireProtocolError(f"incomplete wire message {name!r}: {error}")


def fingerprint_digest(fingerprint: Mapping[str, Any]) -> str:
    """Stable digest of a run-manifest fingerprint for the Hello handshake."""
    import hashlib

    canonical = json.dumps(dict(fingerprint), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class MessageStream:
    """Blocking message framing over one connected socket.

    Reading uses a buffered binary file so partial lines accumulate until
    the newline arrives; writing serialises under a lock because the shard
    worker's heartbeat thread shares the socket with its main loop.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self.closed = False

    def send(self, message: Any) -> None:
        data = encode_message(message)
        if len(data) > MAX_LINE_BYTES:
            raise WireProtocolError(
                f"wire message of {len(data)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte line limit"
            )
        with self._send_lock:
            if self.closed:
                raise ConnectionLost("connection already closed")
            if faults.fire("wire_send") == "drop":
                # Injected mid-record connection drop: ship a torn prefix,
                # then abort without a FIN handshake — the peer sees a torn
                # line and a reset, exactly like a cut network.
                try:
                    self._sock.sendall(data[: max(1, len(data) // 2)])
                    self._sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00",
                    )
                except OSError:  # pragma: no cover - peer already gone
                    pass
                self._close_socket()
                raise ConnectionLost("connection dropped (injected)")
            try:
                self._sock.sendall(data)
            except OSError as error:
                self._close_socket()
                raise ConnectionLost(f"send failed: {error}")

    def recv(self) -> Any:
        """Block for the next message; :class:`ConnectionLost` on EOF/reset."""
        try:
            line = self._reader.readline(MAX_LINE_BYTES + 1)
        except OSError as error:
            raise ConnectionLost(f"recv failed: {error}")
        if not line:
            raise ConnectionLost("connection closed by peer")
        if not line.endswith(b"\n"):
            # Either the peer died mid-line (torn tail) or the line exceeds
            # the limit; both end the conversation.
            raise ConnectionLost("torn or oversized wire line")
        return decode_message(line)

    def close(self) -> None:
        with self._send_lock:
            self._close_socket()

    def _close_socket(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._reader.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
