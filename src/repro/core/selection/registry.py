"""Name-based selector registry used by the engine, benchmarks and examples."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.selection.base import TaskSelector
from repro.core.selection.brute_force import BruteForceSelector
from repro.core.selection.fact_entropy import FactEntropySelector
from repro.core.selection.greedy import GreedySelector
from repro.core.selection.lazy import LazyGreedySelector
from repro.core.selection.preprocessing import (
    PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector,
)
from repro.core.selection.pruning import PruningGreedySelector
from repro.core.selection.random_selector import RandomSelector
from repro.core.selection.reference import ReferenceGreedySelector
from repro.exceptions import SelectionError

_FACTORIES: Dict[str, Callable[..., TaskSelector]] = {
    BruteForceSelector.name: BruteForceSelector,
    FactEntropySelector.name: FactEntropySelector,
    GreedySelector.name: GreedySelector,
    LazyGreedySelector.name: LazyGreedySelector,
    PruningGreedySelector.name: PruningGreedySelector,
    PreprocessingGreedySelector.name: PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector.name: PrunedPreprocessingGreedySelector,
    RandomSelector.name: RandomSelector,
    ReferenceGreedySelector.name: ReferenceGreedySelector,
}

#: Aliases matching the labels used in the paper's tables and figures.
_ALIASES: Dict[str, str] = {
    "OPT": BruteForceSelector.name,
    "Approx.": GreedySelector.name,
    "Approx.&Prune": PruningGreedySelector.name,
    "Approx.&Pre.": PreprocessingGreedySelector.name,
    "Approx.&Prune&Pre.": PrunedPreprocessingGreedySelector.name,
    "Random": RandomSelector.name,
}


def available_selectors() -> List[str]:
    """Return the canonical names of all registered selectors."""
    return sorted(_FACTORIES)


def get_selector(name: str, **kwargs) -> TaskSelector:
    """Instantiate a selector by canonical name or paper label.

    ``kwargs`` are forwarded to the selector constructor (e.g. ``seed`` for
    the random baseline).
    """
    canonical = _ALIASES.get(name, name)
    try:
        factory = _FACTORIES[canonical]
    except KeyError:
        raise SelectionError(
            f"unknown selector {name!r}; available: {available_selectors()}"
        ) from None
    return factory(**kwargs)
