"""Lazy greedy task selection (CELF-style priority queue).

Submodularity of ``H(T)`` (Section III of the paper) means the marginal gain
``ρ_f(T) = H(T ∪ {f}) − H(T)`` of any fact only shrinks as the selected set
grows.  A gain computed in an earlier iteration is therefore an *upper bound*
on the fact's current gain — the lazy-evaluation insight of Leskovec et al.'s
CELF applied to the paper's Algorithm 1.  Each iteration pops candidates from
a max-heap of stale gains and refreshes only until the best refreshed gain
provably beats every unrefreshed bound; the (often large) rest of the
candidate pool is skipped outright, which is what makes selection on wide
fact sets cheap even before vectorisation.

The selector reproduces plain greedy's choices: refreshed candidates are
re-ranked with the same ``TIE_TOLERANCE`` first-index-wins scan, the same net
gain ``ρ − H(Crowd)`` early stop applies, and every unrefreshed candidate's
bound lies strictly below the winner's gain minus the tolerance.  The refresh
cut-off keeps a ``2 × TIE_TOLERANCE`` margin so candidates that plain greedy
would have used as interim tie-blockers are refreshed too; only task sets
whose *mathematically distinct* gains are spaced inside that ~2e-12 window —
pure floating-point noise territory, where any choice is arbitrary — could
in principle diverge.

Heterogeneous channels fold the per-task noise into the tracked gain itself
(``ρ_f(T) − H(Crowd_f)``, still submodular because the noise is modular and
still bounded by one bit), so the CELF bound logic is unchanged; uniform
models keep the original raw-gain arithmetic bit-for-bit.

With a :class:`~repro.core.selection.parallel.ParallelEvaluator` the refresh
loop runs in **waves**: instead of popping one stale entry at a time, a batch
of entries whose bounds clear the current cut-off is popped together and
scored through the evaluator's worker pool.  Waves may refresh a few more
candidates than the strictly sequential loop (the cut-off only tightens as
results come back), but the *selection* is provably unchanged: any candidate
the sequential loop would have left stale has ``bound < best − 2·tol``, and
since its true gain is bounded by that stale bound it can neither win the
first-index-wins re-rank nor block another candidate.  The stopping rule —
every remaining stale bound below the best refreshed gain minus the margin —
is the same in both forms, so the same winner (and the same tie behaviour)
falls out of the same re-rank, with the refresh work sharded across cores.

Like the other greedy variants, the scan runs on a vectorized incremental
engine that may be built fresh per call or borrowed warm from a
:class:`~repro.core.selection.session.RefinementSession` (whose persistent
pool, when configured, also serves the refresh waves).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.engine import EntropyEngine, SelectionState
from repro.core.selection.greedy import GAIN_TOLERANCE
from repro.core.selection.parallel import ParallelEvaluator, ParallelSelectorMixin
from repro.core.utility import crowd_entropy

#: A single binary answer carries at most one bit, so 1.0 upper-bounds every
#: marginal gain before anything has been evaluated (net gains subtract a
#: non-negative noise term and are bounded by the same constant).
_INITIAL_GAIN_BOUND = 1.0


def _refresh_sequential(
    engine: EntropyEngine,
    state: SelectionState,
    heap: List[tuple],
    stats: SelectionStats,
    uniform: Optional[float],
) -> List[list]:
    """The original one-pop-at-a-time CELF refresh loop for one iteration."""
    refreshed: List[list] = []
    best_gain = float("-inf")

    # Refresh until every remaining stale bound sits below the best
    # fresh gain: those candidates cannot win this iteration, and by
    # submodularity never need a look.  The 2x tolerance margin also
    # refreshes would-be interim tie-blockers of plain greedy's scan,
    # keeping the re-ranking below faithful to it.
    while heap and -heap[0][0] >= best_gain - 2 * TIE_TOLERANCE:
        _stale, index, fact_id = heapq.heappop(heap)
        stats.candidate_evaluations += 1
        if state.width:
            stats.cache_hits += 1
        gain = engine.extension_entropy(state, fact_id) - state.entropy
        if uniform is None:
            gain -= engine.noise_entropy(fact_id)
        refreshed.append([gain, index, fact_id])
        if gain > best_gain:
            best_gain = gain
    return refreshed


def _refresh_waves(
    engine: EntropyEngine,
    state: SelectionState,
    heap: List[tuple],
    stats: SelectionStats,
    uniform: Optional[float],
    evaluator: ParallelEvaluator,
) -> List[list]:
    """Batch-refresh CELF: pop stale entries in waves, score them in parallel.

    Each wave pops up to :meth:`ParallelEvaluator.refresh_batch_size` entries
    whose stale bounds clear the *current* cut-off and scores the whole batch
    through the evaluator.  A wave may overshoot the strictly sequential
    refresh set (the cut-off only tightens as results come back); see the
    module docstring for why the selection is unchanged.  Overshoot is only
    accepted when it buys parallelism: a wave the policy would score
    in-process anyway (too little work left, small support) is popped one
    entry at a time, which *is* the sequential loop — so below the parallel
    threshold CELF's lazy savings are fully preserved.
    """
    refreshed: List[list] = []
    best_gain = float("-inf")
    wave_size = evaluator.refresh_batch_size()

    while heap and -heap[0][0] >= best_gain - 2 * TIE_TOLERANCE:
        cap = (
            wave_size
            if evaluator.would_parallelise(min(wave_size, len(heap)))
            else 1
        )
        batch: List[Tuple[int, str]] = []
        while (
            heap
            and len(batch) < cap
            and -heap[0][0] >= best_gain - 2 * TIE_TOLERANCE
        ):
            _stale, index, fact_id = heapq.heappop(heap)
            batch.append((index, fact_id))
        fact_ids = [fact_id for _, fact_id in batch]
        entropies = evaluator.evaluate(state, fact_ids)
        if entropies is None:
            entropies = [
                engine.extension_entropy(state, fact_id) for fact_id in fact_ids
            ]
        stats.candidate_evaluations += len(batch)
        if state.width:
            stats.cache_hits += len(batch)
        for (index, fact_id), extension in zip(batch, entropies):
            gain = extension - state.entropy
            if uniform is None:
                gain -= engine.noise_entropy(fact_id)
            refreshed.append([gain, index, fact_id])
            if gain > best_gain:
                best_gain = gain
    return refreshed


def run_lazy_greedy_on_engine(
    engine: EntropyEngine,
    k: int,
    candidates: Sequence[str],
    evaluator: Optional[ParallelEvaluator] = None,
) -> SelectionResult:
    """Algorithm 1 with CELF lazy evaluation, on a (possibly warm) engine."""
    stats = SelectionStats(kernel=engine.kernel_tier)
    state = engine.initial_state()
    uniform = engine.uniform_accuracy
    uniform_noise = crowd_entropy(uniform) if uniform is not None else 0.0

    # Max-heap of (−stale_gain, candidate_index, fact_id); the index makes
    # exact ties pop in candidate order, mirroring plain greedy.  Entries
    # are only re-inserted after a refresh round ends, so every pop below
    # carries a stale bound and is re-evaluated.
    heap: List[tuple] = [
        (-_INITIAL_GAIN_BOUND, index, fact_id)
        for index, fact_id in enumerate(candidates)
    ]

    for _iteration in range(k):
        stats.iterations += 1
        if evaluator is None:
            refreshed = _refresh_sequential(engine, state, heap, stats, uniform)
        else:
            refreshed = _refresh_waves(engine, state, heap, stats, uniform, evaluator)
        stats.skipped_evaluations += len(heap)

        # Re-rank the refreshed candidates exactly like plain greedy's
        # in-order scan so tie-breaking matches.
        refreshed.sort(key=lambda item: item[1])
        best_id = None
        best_score = float("-inf")
        for gain, _index, fact_id in refreshed:
            score = state.entropy + gain
            if score > best_score + TIE_TOLERANCE:
                best_score = score
                best_id = fact_id
        for gain, index, fact_id in refreshed:
            if fact_id != best_id:
                heapq.heappush(heap, (-gain, index, fact_id))

        if best_id is None:
            break
        net_gain = best_score - state.entropy - uniform_noise
        if net_gain <= GAIN_TOLERANCE:
            break
        state = engine.extend(state, best_id)
        if not heap:
            break

    return SelectionResult(
        task_ids=state.task_ids, objective=state.entropy, stats=stats
    )


class LazyGreedySelector(ParallelSelectorMixin, TaskSelector):
    """Algorithm 1 with CELF lazy evaluation of submodular marginal gains.

    Parameters
    ----------
    parallel:
        Optional :class:`~repro.core.selection.parallel.ParallelPolicy`: the
        CELF refresh loop then runs in batch waves scored through a worker
        pool (see the module docstring), with selections identical to the
        sequential heap.  Sessions owning a persistent evaluator serve the
        waves from their long-lived pool.
    """

    name = "greedy_lazy"

    def _runner(
        self,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
        evaluator: Optional[ParallelEvaluator],
    ) -> SelectionResult:
        return run_lazy_greedy_on_engine(engine, k, candidates, evaluator=evaluator)

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        return self._scan(
            EntropyEngine(distribution, crowd), k, candidates, self._runner
        )

    def _select_with_session(self, session, k, candidates) -> SelectionResult:
        return self._scan(
            session.engine,
            k,
            candidates,
            self._runner,
            shared_evaluator=session.shared_evaluator(),
        )
