"""Unit tests for the heterogeneous channel-model hierarchy."""

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import (
    CalibratedCrowdModel,
    CrowdModel,
    DifficultyAdjustedCrowdModel,
    PerFactChannelModel,
)
from repro.core.distribution import JointDistribution
from repro.core.merging import answer_likelihood_array, merge_answers
from repro.exceptions import InvalidCrowdModelError


@pytest.fixture
def dist():
    return JointDistribution.from_assignments(
        ("a", "b", "c"),
        {
            (True, True, False): 0.4,
            (True, False, False): 0.3,
            (False, True, True): 0.2,
            (False, False, False): 0.1,
        },
    )


class TestCrowdModelChannelInterface:
    def test_uniform_accuracy_is_shared_pc(self):
        crowd = CrowdModel(0.8)
        assert crowd.uniform_accuracy == 0.8
        assert crowd.accuracy_for("anything") == 0.8
        assert crowd.error_for("anything") == pytest.approx(0.2)

    def test_accuracies_vector(self):
        crowd = CrowdModel(0.9)
        assert np.array_equal(crowd.accuracies(["a", "b"]), np.array([0.9, 0.9]))


class TestPerFactChannelModel:
    def test_default_and_overrides(self):
        model = PerFactChannelModel(0.8, {"a": 0.6, "b": 0.95})
        assert model.accuracy_for("a") == 0.6
        assert model.accuracy_for("b") == 0.95
        assert model.accuracy_for("c") == 0.8
        assert model.uniform_accuracy is None

    def test_all_equal_overrides_report_uniform(self):
        model = PerFactChannelModel(0.8, {"a": 0.8, "b": 0.8})
        assert model.uniform_accuracy == 0.8
        assert PerFactChannelModel(0.7).uniform_accuracy == 0.7

    def test_invalid_default_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            PerFactChannelModel(0.3)

    def test_invalid_override_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            PerFactChannelModel(0.8, {"a": 1.2})

    def test_uniform_answer_masses_match_crowd_model_bitwise(self, dist):
        crowd = CrowdModel(0.8)
        model = PerFactChannelModel(0.8, {"a": 0.8})
        task_ids = ["a", "b", "c"]
        assert np.array_equal(
            model.answer_masses(dist, task_ids), crowd.answer_masses(dist, task_ids)
        )
        assert model.task_entropy(dist, task_ids) == crowd.task_entropy(dist, task_ids)

    def test_heterogeneous_task_entropy_matches_dense_reference(self, dist):
        model = PerFactChannelModel(0.8, {"a": 0.6, "c": 0.95})
        task_ids = ["a", "b", "c"]
        accuracies = [model.accuracy_for(fact_id) for fact_id in task_ids]
        positions = dist.positions(task_ids)

        expected = {}
        for answer in range(1 << 3):
            total = 0.0
            for mask, probability in dist.items():
                term = probability
                for bit, accuracy in enumerate(accuracies):
                    same = ((answer >> bit) & 1) == ((mask >> positions[bit]) & 1)
                    term *= accuracy if same else 1.0 - accuracy
                total += term
            expected[answer] = total

        masses = model.answer_masses(dist, task_ids)
        for answer, mass in expected.items():
            assert masses[answer] == pytest.approx(mass, abs=1e-12)

    def test_joint_fact_answer_entropy_uniform_matches_crowd_model(self, dist):
        crowd = CrowdModel(0.75)
        model = PerFactChannelModel(0.75)
        assert model.joint_fact_answer_entropy(
            dist, ["a"], ["b", "c"]
        ) == pytest.approx(
            crowd.joint_fact_answer_entropy(dist, ["a"], ["b", "c"]), abs=1e-12
        )


class TestDifficultyAdjustedCrowdModel:
    def test_difficulty_lowers_accuracy_with_floor(self):
        model = DifficultyAdjustedCrowdModel(
            0.8, {"easy": 0.0, "hard": 0.2, "brutal": 0.45}
        )
        assert model.accuracy_for("easy") == 0.8
        assert model.accuracy_for("hard") == pytest.approx(0.6)
        assert model.accuracy_for("brutal") == 0.5  # floored, not 0.35
        assert model.uniform_accuracy is None
        assert model.difficulties["hard"] == 0.2

    def test_zero_difficulties_stay_uniform(self):
        model = DifficultyAdjustedCrowdModel(0.85, {"a": 0.0, "b": 0.0})
        assert model.uniform_accuracy == 0.85

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            DifficultyAdjustedCrowdModel(0.8, {"a": 0.7})
        with pytest.raises(InvalidCrowdModelError):
            DifficultyAdjustedCrowdModel(0.8, {"a": -0.1})


class TestCalibratedCrowdModel:
    def test_from_domain_estimates_accepts_floats_and_results(self):
        class FakeResult:
            estimated_accuracy = 0.9

        model = CalibratedCrowdModel.from_domain_estimates(
            {"title": 0.7, "author": FakeResult()},
            {"f1": "title", "f2": "author", "f3": "publisher"},
            default_accuracy=0.8,
        )
        assert model.accuracy_for("f1") == 0.7
        assert model.accuracy_for("f2") == 0.9
        assert model.accuracy_for("f3") == 0.8  # uncalibrated domain


class TestReferencePathGuard:
    def test_reference_selector_rejects_heterogeneous_models(self, dist):
        from repro.core.selection import ReferenceGreedySelector
        from repro.core.selection.reference import reference_task_entropy
        from repro.exceptions import SelectionError

        model = PerFactChannelModel(0.8, {"a": 0.6})
        with pytest.raises(SelectionError):
            ReferenceGreedySelector().select(dist, model, 2)
        with pytest.raises(SelectionError):
            reference_task_entropy(model, dist, ["a", "b"])

    def test_reference_selector_accepts_uniform_per_fact_model(self, dist):
        from repro.core.selection import GreedySelector, ReferenceGreedySelector

        model = PerFactChannelModel(0.8)
        reference = ReferenceGreedySelector().select(dist, model, 2)
        engine = GreedySelector().select(dist, model, 2)
        assert reference.task_ids == engine.task_ids


class TestHeterogeneousMerging:
    def test_uniform_likelihoods_match_crowd_model_bitwise(self, dist):
        answers = AnswerSet.from_mapping({"a": True, "c": False})
        crowd = CrowdModel(0.8)
        model = PerFactChannelModel(0.8)
        assert np.array_equal(
            answer_likelihood_array(dist, answers, model),
            answer_likelihood_array(dist, answers, crowd),
        )

    def test_heterogeneous_merge_matches_manual_bayes(self, dist):
        model = PerFactChannelModel(0.8, {"a": 0.6, "b": 0.9})
        answers = AnswerSet.from_mapping({"a": True, "b": False})
        posterior = merge_answers(dist, answers, model)

        manual = {}
        for mask, probability in dist.items():
            like_a = 0.6 if (mask & 1) else 0.4  # answered True
            like_b = 0.1 if (mask >> 1) & 1 else 0.9  # answered False
            manual[mask] = probability * like_a * like_b
        total = sum(manual.values())
        for mask, mass in manual.items():
            assert posterior.probability(mask) == pytest.approx(
                mass / total, abs=1e-12
            )

    def test_heterogeneous_selection_expects_what_merging_applies(self, dist):
        # The same channel model drives Equation 2 and Equation 3: the
        # answer-set masses must equal the total probability of each answer
        # under the merge likelihoods.
        model = PerFactChannelModel(0.8, {"a": 0.55})
        task_ids = ["a", "b"]
        masses = model.answer_masses(dist, task_ids)
        for answer_mask in range(4):
            answers = AnswerSet.from_mapping(
                {
                    "a": bool(answer_mask & 1),
                    "b": bool(answer_mask & 2),
                }
            )
            likelihoods = answer_likelihood_array(dist, answers, model)
            _, probabilities = dist.support_arrays()
            assert masses[answer_mask] == pytest.approx(
                float((probabilities * likelihoods).sum()), abs=1e-12
            )
